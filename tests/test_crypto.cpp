/**
 * @file
 * Crypto tests: FIPS-197 / SP 800-38A / SP 800-38D / RFC 3174 / RFC 2202
 * known-answer tests plus round-trip and tamper-detection properties, and
 * checks of the Section IV timing models.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/crypto_timing.hpp"
#include "crypto/sha1.hpp"
#include "sim/random.hpp"

namespace {

using namespace ccsim;
using crypto::Aes128;
using crypto::AesCbc;
using crypto::AesGcm;
using crypto::Block;
using crypto::Key128;

std::vector<std::uint8_t>
fromHex(const std::string &hex)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
        out.push_back(static_cast<std::uint8_t>(
            std::stoul(hex.substr(i, 2), nullptr, 16)));
    return out;
}

std::string
toHexStr(const std::uint8_t *data, std::size_t len)
{
    static const char *digits = "0123456789abcdef";
    std::string s;
    for (std::size_t i = 0; i < len; ++i) {
        s.push_back(digits[data[i] >> 4]);
        s.push_back(digits[data[i] & 0xF]);
    }
    return s;
}

Key128
keyFromHex(const std::string &hex)
{
    Key128 k{};
    auto bytes = fromHex(hex);
    std::memcpy(k.data(), bytes.data(), 16);
    return k;
}

Block
blockFromHex(const std::string &hex)
{
    Block b{};
    auto bytes = fromHex(hex);
    std::memcpy(b.data(), bytes.data(), 16);
    return b;
}

TEST(Aes128, Fips197KnownAnswer)
{
    Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    Block b = blockFromHex("00112233445566778899aabbccddeeff");
    aes.encryptBlock(b);
    EXPECT_EQ(toHexStr(b.data(), 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
    aes.decryptBlock(b);
    EXPECT_EQ(toHexStr(b.data(), 16), "00112233445566778899aabbccddeeff");
}

TEST(Aes128, Sp80038aEcbVector)
{
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Block b = blockFromHex("6bc1bee22e409f96e93d7e117393172a");
    aes.encryptBlock(b);
    EXPECT_EQ(toHexStr(b.data(), 16), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, EncryptDecryptRoundTripRandom)
{
    sim::Rng rng(101);
    for (int trial = 0; trial < 50; ++trial) {
        Key128 key{};
        Block pt{};
        for (auto &x : key)
            x = static_cast<std::uint8_t>(rng.next());
        for (auto &x : pt)
            x = static_cast<std::uint8_t>(rng.next());
        Aes128 aes(key);
        Block ct = pt;
        aes.encryptBlock(ct);
        EXPECT_NE(ct, pt);
        aes.decryptBlock(ct);
        EXPECT_EQ(ct, pt);
    }
}

TEST(AesCbc, Sp80038aVector)
{
    AesCbc cbc(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"),
               blockFromHex("000102030405060708090a0b0c0d0e0f"));
    auto data = fromHex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51");
    cbc.encrypt(data.data(), data.size());
    EXPECT_EQ(toHexStr(data.data(), 16),
              "7649abac8119b246cee98e9b12e9197d");
    EXPECT_EQ(toHexStr(data.data() + 16, 16),
              "5086cb9b507219ee95db113a917678b2");
}

TEST(AesCbc, RoundTripArbitraryBlockCounts)
{
    sim::Rng rng(202);
    for (int blocks = 1; blocks <= 8; ++blocks) {
        Key128 key{};
        Block iv{};
        for (auto &x : key)
            x = static_cast<std::uint8_t>(rng.next());
        for (auto &x : iv)
            x = static_cast<std::uint8_t>(rng.next());
        std::vector<std::uint8_t> data(16 * blocks);
        for (auto &x : data)
            x = static_cast<std::uint8_t>(rng.next());
        const auto original = data;
        AesCbc cbc(key, iv);
        cbc.encrypt(data.data(), data.size());
        EXPECT_NE(data, original);
        cbc.decrypt(data.data(), data.size());
        EXPECT_EQ(data, original);
    }
}

TEST(Pkcs7, PadUnpadRoundTrip)
{
    sim::Rng rng(303);
    for (std::size_t len = 0; len <= 64; ++len) {
        std::vector<std::uint8_t> data(len);
        for (auto &x : data)
            x = static_cast<std::uint8_t>(rng.next());
        auto padded = crypto::pkcs7Pad(data.data(), data.size());
        EXPECT_EQ(padded.size() % 16, 0u);
        EXPECT_GT(padded.size(), len);
        const std::size_t unpadded =
            crypto::pkcs7Unpad(padded.data(), padded.size());
        ASSERT_EQ(unpadded, len);
        EXPECT_TRUE(std::equal(data.begin(), data.end(), padded.begin()));
    }
}

TEST(Pkcs7, RejectsCorruptPadding)
{
    auto padded = crypto::pkcs7Pad(nullptr, 0);
    padded.back() = 0;  // invalid pad byte
    EXPECT_EQ(crypto::pkcs7Unpad(padded.data(), padded.size()), SIZE_MAX);
    EXPECT_EQ(crypto::pkcs7Unpad(padded.data(), 8), SIZE_MAX);  // not * 16
}

TEST(AesGcm, Sp80038dTestCase3)
{
    AesGcm gcm(keyFromHex("feffe9928665731c6d6a8f9467308308"));
    auto iv = fromHex("cafebabefacedbaddecaf888");
    auto data = fromHex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b391aafd255");
    Block tag;
    gcm.encrypt(iv.data(), nullptr, 0, data.data(), data.size(), tag);
    EXPECT_EQ(toHexStr(data.data(), data.size()),
              "42831ec2217774244b7221b784d0d49c"
              "e3aa212f2c02a4e035c17e2329aca12e"
              "21d514b25466931c7d8f6a5aac84aa05"
              "1ba30b396a0aac973d58e091473f5985");
    EXPECT_EQ(toHexStr(tag.data(), 16), "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(AesGcm, EmptyPlaintextTag)
{
    // SP 800-38D test case 1: all-zero key, empty everything.
    AesGcm gcm(keyFromHex("00000000000000000000000000000000"));
    auto iv = fromHex("000000000000000000000000");
    Block tag;
    gcm.encrypt(iv.data(), nullptr, 0, nullptr, 0, tag);
    EXPECT_EQ(toHexStr(tag.data(), 16), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(AesGcm, RoundTripWithAad)
{
    sim::Rng rng(404);
    Key128 key{};
    for (auto &x : key)
        x = static_cast<std::uint8_t>(rng.next());
    AesGcm gcm(key);
    std::uint8_t iv[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    std::vector<std::uint8_t> aad = {0xDE, 0xAD, 0xBE, 0xEF};
    for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1500u}) {
        std::vector<std::uint8_t> data(len);
        for (auto &x : data)
            x = static_cast<std::uint8_t>(rng.next());
        const auto original = data;
        Block tag;
        gcm.encrypt(iv, aad.data(), aad.size(), data.data(), data.size(),
                    tag);
        EXPECT_TRUE(gcm.decrypt(iv, aad.data(), aad.size(), data.data(),
                                data.size(), tag));
        EXPECT_EQ(data, original);
    }
}

TEST(AesGcm, DetectsTamperedCiphertextAndTag)
{
    Key128 key = keyFromHex("000102030405060708090a0b0c0d0e0f");
    AesGcm gcm(key);
    std::uint8_t iv[12] = {};
    std::vector<std::uint8_t> data(64, 0x42);
    Block tag;
    gcm.encrypt(iv, nullptr, 0, data.data(), data.size(), tag);

    auto tampered = data;
    tampered[10] ^= 1;
    EXPECT_FALSE(gcm.decrypt(iv, nullptr, 0, tampered.data(),
                             tampered.size(), tag));

    Block bad_tag = tag;
    bad_tag[0] ^= 1;
    auto copy = data;
    EXPECT_FALSE(
        gcm.decrypt(iv, nullptr, 0, copy.data(), copy.size(), bad_tag));
}

TEST(Sha1, Rfc3174KnownAnswers)
{
    EXPECT_EQ(crypto::toHex(crypto::Sha1::hash("abc")),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(crypto::toHex(crypto::Sha1::hash("")),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    EXPECT_EQ(crypto::toHex(crypto::Sha1::hash(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs)
{
    crypto::Sha1 s;
    std::vector<std::uint8_t> chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        s.update(chunk.data(), chunk.size());
    EXPECT_EQ(crypto::toHex(s.finish()),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingMatchesOneShot)
{
    sim::Rng rng(505);
    std::vector<std::uint8_t> data(10000);
    for (auto &x : data)
        x = static_cast<std::uint8_t>(rng.next());
    const auto oneshot = crypto::Sha1::hash(data.data(), data.size());
    crypto::Sha1 s;
    std::size_t off = 0;
    while (off < data.size()) {
        const std::size_t n =
            std::min<std::size_t>(1 + rng.uniformInt(std::uint64_t{97}),
                                  data.size() - off);
        s.update(data.data() + off, n);
        off += n;
    }
    EXPECT_EQ(s.finish(), oneshot);
}

TEST(HmacSha1, Rfc2202Vectors)
{
    // Case 1: key = 20 x 0x0b, data = "Hi There".
    std::vector<std::uint8_t> key(20, 0x0b);
    const std::string data = "Hi There";
    auto mac = crypto::hmacSha1(
        key.data(), key.size(),
        reinterpret_cast<const std::uint8_t *>(data.data()), data.size());
    EXPECT_EQ(crypto::toHex(mac),
              "b617318655057264e28bc0b6fb378c8ef146be00");

    // Case 2: key = "Jefe", data = "what do ya want for nothing?".
    const std::string key2 = "Jefe";
    const std::string data2 = "what do ya want for nothing?";
    auto mac2 = crypto::hmacSha1(
        reinterpret_cast<const std::uint8_t *>(key2.data()), key2.size(),
        reinterpret_cast<const std::uint8_t *>(data2.data()), data2.size());
    EXPECT_EQ(crypto::toHex(mac2),
              "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(CryptoTiming, CoreCountsMatchPaper)
{
    crypto::CpuCryptoModel cpu;
    // GCM at 1.26 c/B and 2.4 GHz: "roughly five cores" for 40 Gb/s FDX.
    const double gcm_cores =
        cpu.coresForLineRate(crypto::Suite::kAesGcm128, 40.0);
    EXPECT_NEAR(gcm_cores, 5.25, 0.01);
    // CBC-SHA1: "at least fifteen cores".
    const double cbc_cores =
        cpu.coresForLineRate(crypto::Suite::kAesCbc128Sha1, 40.0);
    EXPECT_GE(cbc_cores, 14.9);
}

TEST(CryptoTiming, FpgaCbcLatencyMatchesPaper)
{
    crypto::FpgaCryptoModel fpga;
    // 1500 B packet, AES-CBC-128-SHA1, first flit to first flit: ~11 us.
    const auto lat =
        fpga.packetLatency(crypto::Suite::kAesCbc128Sha1, 1500);
    EXPECT_NEAR(sim::toMicros(lat), 11.0, 0.8);
    // GCM is perfectly pipelined: far lower latency.
    const auto gcm = fpga.packetLatency(crypto::Suite::kAesGcm128, 1500);
    EXPECT_LT(sim::toMicros(gcm), 1.5);
}

TEST(CryptoTiming, SoftwareCbcLatencyNearPaper)
{
    crypto::CpuCryptoModel cpu;
    const auto lat =
        cpu.packetLatency(crypto::Suite::kAesCbc128Sha1, 1500);
    // Paper: approximately 4 us in software for a 1500 B packet.
    EXPECT_NEAR(sim::toMicros(lat), 4.0, 0.5);
}

TEST(CryptoTiming, FpgaSustainsLineRate)
{
    crypto::FpgaCryptoModel fpga;
    EXPECT_GE(fpga.throughputGbps(crypto::Suite::kAesGcm128, 40.0), 40.0);
    EXPECT_GE(fpga.throughputGbps(crypto::Suite::kAesCbc128Sha1, 40.0),
              40.0);
}

}  // namespace
