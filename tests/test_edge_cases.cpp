/**
 * @file
 * Edge-case coverage across modules: LTL flow-control limits and control
 * plane corners, switch PFC persistence and ECN gating, delay models,
 * the LTL packet switch in isolation, torus repair, and additional
 * crypto vectors (decrypt direction, multi-block GCM).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "crypto/aes.hpp"
#include "crypto/sha1.hpp"
#include "ltl/ltl_engine.hpp"
#include "ltl/packet_switch.hpp"
#include "net/delay_model.hpp"
#include "net/switch.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "torus/torus.hpp"

namespace {

using namespace ccsim;
using sim::EventQueue;

// ---------------------------------------------------------------------
// LTL corners.
// ---------------------------------------------------------------------

struct MiniPair {
    EventQueue eq;
    std::unique_ptr<ltl::LtlEngine> a, b;
    bool blackhole = false;
    int delivered = 0;

    explicit MiniPair(ltl::LtlConfig base = ltl::LtlConfig{})
    {
        ltl::LtlConfig ca = base;
        ca.localIp = {1};
        ltl::LtlConfig cb = base;
        cb.localIp = {2};
        a = std::make_unique<ltl::LtlEngine>(
            eq, ca, [this](const net::PacketPtr &p) {
                if (!blackhole)
                    eq.scheduleAfter(sim::fromNanos(500), [this, p] {
                        b->onNetworkPacket(p);
                    });
            });
        b = std::make_unique<ltl::LtlEngine>(
            eq, cb, [this](const net::PacketPtr &p) {
                eq.scheduleAfter(sim::fromNanos(500), [this, p] {
                    a->onNetworkPacket(p);
                });
            });
        b->setDeliveryHandler(
            [this](const ltl::LtlMessage &) { ++delivered; });
    }
};

TEST(LtlEdge, UnackedStoreLimitThrottlesSender)
{
    ltl::LtlConfig cfg;
    cfg.unackedStoreBytes = 4 * 1408;  // four full frames
    cfg.sendWindowFrames = 1000;
    MiniPair pair(cfg);
    pair.blackhole = true;  // no ACKs ever return
    const auto conn = pair.a->openSend({2}, 0);
    for (int i = 0; i < 50; ++i)
        pair.a->sendMessage(conn, 1408);
    pair.eq.runUntil(sim::fromMicros(30));
    // Sender stops at the frame-store limit (4 frames may slightly
    // overshoot by one due to the >= check ordering).
    EXPECT_LE(pair.a->framesSent(), 5u);
}

TEST(LtlEdge, CnpsAreRateLimitedPerConnection)
{
    ltl::LtlConfig cfg;
    cfg.cnpMinInterval = 50 * sim::kMicrosecond;
    MiniPair pair(cfg);
    // Every data frame ECN-marked.
    pair.a = std::make_unique<ltl::LtlEngine>(
        pair.eq, [&] {
            ltl::LtlConfig c = cfg;
            c.localIp = {1};
            return c;
        }(),
        [&pair](const net::PacketPtr &p) {
            p->ecnMarked = true;
            pair.eq.scheduleAfter(sim::fromNanos(500), [&pair, p] {
                pair.b->onNetworkPacket(p);
            });
        });
    const auto conn = pair.a->openSend({2}, pair.b->openReceive(0));
    // 100 marked frames all land within the first 50 us window: only
    // one CNP may be emitted for the whole burst.
    for (int i = 0; i < 100; ++i)
        pair.a->sendMessage(conn, 64);
    pair.eq.runUntil(sim::fromMicros(45));
    EXPECT_EQ(pair.b->cnpsSent(), 1u);
    // A marked frame in the next window produces the next CNP.
    pair.eq.scheduleAfter(sim::fromMicros(70), [&pair, conn] {
        pair.a->sendMessage(conn, 64);
    });
    pair.eq.runUntil(sim::fromMicros(300));
    EXPECT_EQ(pair.b->cnpsSent(), 2u);
}

TEST(LtlEdge, SendOnFailedConnectionIsDroppedNotFatal)
{
    ltl::LtlConfig cfg;
    cfg.maxRetries = 1;
    MiniPair pair(cfg);
    pair.blackhole = true;
    const auto conn = pair.a->openSend({2}, 0);
    pair.a->sendMessage(conn, 64);
    pair.eq.runUntil(sim::fromMillis(1));  // times out, marked failed
    const auto frames_before = pair.a->framesSent();
    pair.a->sendMessage(conn, 64);  // must be ignored
    pair.eq.runUntil(sim::fromMillis(2));
    EXPECT_EQ(pair.a->framesSent(), frames_before);
}

TEST(LtlEdge, DataForClosedReceiveConnectionIgnored)
{
    MiniPair pair;
    const auto rx = pair.b->openReceive(0);
    const auto conn = pair.a->openSend({2}, rx);
    pair.b->closeReceive(rx);
    pair.a->sendMessage(conn, 64);
    pair.eq.runUntil(sim::fromMicros(100));
    EXPECT_EQ(pair.delivered, 0);
    // Go-back-N keeps retrying against the void; no crash, no delivery.
    EXPECT_GE(pair.a->timeouts(), 1u);
}

TEST(LtlEdge, ZeroByteMessageDelivers)
{
    MiniPair pair;
    const auto conn = pair.a->openSend({2}, pair.b->openReceive(0));
    pair.a->sendMessage(conn, 0, std::make_shared<int>(7));
    pair.eq.runUntil(sim::fromMicros(50));
    EXPECT_EQ(pair.delivered, 1);
}

// ---------------------------------------------------------------------
// Switch corners.
// ---------------------------------------------------------------------

struct SwitchRig {
    EventQueue eq;
    net::Switch sw;
    net::Link in{eq, "in", 40.0, 1.0};
    net::Link out{eq, "out", 0.5, 1.0};  // slow egress

    struct Sink : net::PacketSink {
        int count = 0;
        void acceptPacket(const net::PacketPtr &) override { ++count; }
    } dst;

    explicit SwitchRig(net::SwitchConfig cfg) : sw(eq, cfg)
    {
        const int po = sw.addPort(&out.bToA());
        out.attachA(&dst);
        const int pi = sw.addPort(&in.bToA());
        in.attachB(sw.portSink(pi));
        sw.addHostRoute({5}, po);
    }

    void blast(int n, std::uint8_t prio, bool ecn_capable = false)
    {
        for (int i = 0; i < n; ++i) {
            auto pkt = net::makePacket();
            pkt->ipSrc = {1};
            pkt->ipDst = {5};
            pkt->priority = prio;
            pkt->ecnCapable = ecn_capable;
            pkt->payloadBytes = 1400;
            in.aToB().send(pkt);
        }
    }
};

TEST(SwitchEdge, PfcRefreshKeepsPausingUnderPersistentCongestion)
{
    net::SwitchConfig cfg;
    cfg.forwardingLatency = 0;
    cfg.pfcXoffBytes = 8 * 1024;
    cfg.pfcXonBytes = 4 * 1024;
    cfg.pfcPauseTime = 10 * sim::kMicrosecond;
    SwitchRig rig(cfg);
    rig.blast(128, net::kTcLossless);
    rig.eq.runAll();
    // Persistent congestion forces repeated X-OFF refreshes followed by
    // an eventual X-ON; more than a handful of PFC frames total.
    EXPECT_GT(rig.sw.pfcFramesSent(), 5u);
    EXPECT_EQ(rig.dst.count, 128);
    EXPECT_EQ(rig.sw.packetsDropped(), 0u);
}

TEST(SwitchEdge, EcnOnlyMarksEctPackets)
{
    net::SwitchConfig cfg;
    cfg.forwardingLatency = 0;
    cfg.ecnThresholdBytes = 2000;
    SwitchRig rig(cfg);
    rig.blast(30, net::kTcLossy, /*ecn_capable=*/false);
    rig.eq.runAll();
    EXPECT_EQ(rig.sw.packetsEcnMarked(), 0u);  // non-ECT never marked
    rig.blast(30, net::kTcLossy, /*ecn_capable=*/true);
    rig.eq.runAll();
    EXPECT_GT(rig.sw.packetsEcnMarked(), 0u);
}

TEST(SwitchEdge, LossyClassDropsInsteadOfPausing)
{
    net::SwitchConfig cfg;
    cfg.forwardingLatency = 0;
    SwitchRig rig(cfg);
    // Flood far beyond the buffering (3000 x ~1.5 kB >> 1 MB queues):
    // lossy-class packets drop (at the ingress link and/or the slow
    // egress), and no PFC is ever generated for them.
    rig.blast(3000, net::kTcLossy);
    rig.eq.runAll();
    const auto drops = rig.in.aToB().packetsDropped() +
                       rig.out.bToA().packetsDropped() +
                       rig.sw.packetsDropped();
    EXPECT_GT(drops, 0u);
    EXPECT_EQ(rig.sw.pfcFramesSent(), 0u);  // no PFC for lossy traffic
}

// ---------------------------------------------------------------------
// Delay models.
// ---------------------------------------------------------------------

TEST(DelayModels, LognormalRespectsMeanAndCap)
{
    sim::Rng rng(1);
    net::LognormalDelay model(sim::fromNanos(500), 1.0,
                              sim::fromNanos(2000));
    double sum = 0;
    sim::TimePs max_seen = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const auto d = model.sample(rng);
        sum += static_cast<double>(d);
        max_seen = std::max(max_seen, d);
        ASSERT_LE(d, sim::fromNanos(2000));
        ASSERT_GE(d, 0);
    }
    // Mean shifts down slightly because of the cap; stay within 20%.
    EXPECT_NEAR(sum / n, static_cast<double>(sim::fromNanos(500)),
                0.2 * sim::fromNanos(500));
    EXPECT_EQ(max_seen, sim::fromNanos(2000));  // cap is reachable
}

TEST(DelayModels, MixtureTailProbability)
{
    sim::Rng rng(2);
    net::MixtureDelay model(
        0.1, std::make_unique<net::FixedDelay>(sim::fromNanos(100)),
        std::make_unique<net::FixedDelay>(sim::fromNanos(10000)));
    int tail = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        tail += model.sample(rng) > sim::fromNanos(5000) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(tail) / n, 0.1, 0.01);
}

// ---------------------------------------------------------------------
// LTL packet switch in isolation.
// ---------------------------------------------------------------------

TEST(PacketSwitchUnit, ClassifiesAndCounts)
{
    EventQueue eq;
    int transmitted = 0;
    std::uint8_t last_prio = 0xFF;
    ltl::PacketSwitchConfig cfg;
    ltl::LtlPacketSwitch ps(eq, cfg, [&](const net::PacketPtr &p) {
        ++transmitted;
        last_prio = p->priority;
        return true;
    });
    auto ltl_pkt = net::makePacket();
    ltl_pkt->payloadBytes = 100;
    EXPECT_TRUE(ps.sendLtl(ltl_pkt));
    EXPECT_EQ(last_prio, net::kTcLossless);
    EXPECT_TRUE(ltl_pkt->ecnCapable);

    auto role_pkt = net::makePacket();
    role_pkt->payloadBytes = 100;
    EXPECT_TRUE(ps.sendRole(role_pkt));
    EXPECT_EQ(last_prio, net::kTcLossy);
    EXPECT_EQ(ps.ltlFramesSent(), 1u);
    EXPECT_EQ(ps.rolePacketsSent(), 1u);
    EXPECT_EQ(transmitted, 2);
}

TEST(PacketSwitchUnit, LtlBypassesRedPolicer)
{
    EventQueue eq;
    ltl::PacketSwitchConfig cfg;
    cfg.roleBandwidthLimitGbps = 0.001;  // essentially nothing for roles
    cfg.roleBurstBytes = 2000;
    ltl::LtlPacketSwitch ps(eq, cfg,
                            [](const net::PacketPtr &) { return true; });
    int ltl_ok = 0, role_ok = 0;
    for (int i = 0; i < 100; ++i) {
        auto p1 = net::makePacket();
        p1->payloadBytes = 1400;
        ltl_ok += ps.sendLtl(p1) ? 1 : 0;
        auto p2 = net::makePacket();
        p2->payloadBytes = 1400;
        role_ok += ps.sendRole(p2) ? 1 : 0;
    }
    EXPECT_EQ(ltl_ok, 100);      // LTL is DC-QCN-managed, never policed
    EXPECT_LT(role_ok, 10);      // role traffic squeezed by RED
}

// ---------------------------------------------------------------------
// Torus repair and custom parameters.
// ---------------------------------------------------------------------

TEST(TorusEdge, RepairRestoresLatencyAndReachability)
{
    torus::TorusNetwork t;
    const auto healthy = *t.roundTripLatency({0, 0}, {2, 0});
    t.failNode({1, 0});
    EXPECT_GT(*t.roundTripLatency({0, 0}, {2, 0}), healthy);
    EXPECT_EQ(t.reachableNodes({0, 0}), 47);
    t.repairNode({1, 0});
    EXPECT_EQ(*t.roundTripLatency({0, 0}, {2, 0}), healthy);
    EXPECT_EQ(t.reachableNodes({0, 0}), 48);
}

TEST(TorusEdge, CustomDimensionsRouteCorrectly)
{
    torus::TorusParams params;
    params.width = 4;
    params.height = 4;
    torus::TorusNetwork t(params);
    EXPECT_EQ(t.numNodes(), 16);
    EXPECT_EQ(*t.hopCount({0, 0}, {2, 2}), 4);
    EXPECT_EQ(t.eccentricity({0, 0}), 4);
}

// ---------------------------------------------------------------------
// Extra crypto vectors: decrypt direction & multi-block boundaries.
// ---------------------------------------------------------------------

TEST(CryptoEdge, CbcDecryptKnownVector)
{
    crypto::Key128 key{};
    auto key_bytes = std::array<std::uint8_t, 16>{
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    std::memcpy(key.data(), key_bytes.data(), 16);
    crypto::Block iv{};
    for (int i = 0; i < 16; ++i)
        iv[i] = static_cast<std::uint8_t>(i);
    crypto::AesCbc cbc(key, iv);
    // SP 800-38A F.2.2 CBC-AES128.Decrypt, first block.
    std::uint8_t ct[16] = {0x76, 0x49, 0xab, 0xac, 0x81, 0x19, 0xb2, 0x46,
                           0xce, 0xe9, 0x8e, 0x9b, 0x12, 0xe9, 0x19, 0x7d};
    cbc.decrypt(ct, 16);
    const std::uint8_t pt[16] = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40,
                                 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11,
                                 0x73, 0x93, 0x17, 0x2a};
    EXPECT_EQ(std::memcmp(ct, pt, 16), 0);
}

TEST(CryptoEdge, GcmIvReuseProducesIdenticalKeystream)
{
    // Not a feature — a property that explains why the crypto role keys
    // its IVs off a per-flow counter: same key+IV => same keystream.
    crypto::Key128 key{};
    key[5] = 0x77;
    crypto::AesGcm gcm(key);
    std::uint8_t iv[12] = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
    std::vector<std::uint8_t> a(32, 0x00), b(32, 0xFF);
    crypto::Block tag_a, tag_b;
    gcm.encrypt(iv, nullptr, 0, a.data(), a.size(), tag_a);
    gcm.encrypt(iv, nullptr, 0, b.data(), b.size(), tag_b);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a[i] ^ b[i], 0xFF);  // keystream cancelled out
}

TEST(CryptoEdge, HmacRejectsTruncatedTag)
{
    const std::string key = "k";
    const std::string msg = "msg";
    auto mac = crypto::hmacSha1(
        reinterpret_cast<const std::uint8_t *>(key.data()), key.size(),
        reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size());
    auto mac2 = crypto::hmacSha1(
        reinterpret_cast<const std::uint8_t *>(key.data()), key.size(),
        reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size());
    EXPECT_EQ(mac, mac2);
    const std::string other = "msG";
    auto mac3 = crypto::hmacSha1(
        reinterpret_cast<const std::uint8_t *>(key.data()), key.size(),
        reinterpret_cast<const std::uint8_t *>(other.data()),
        other.size());
    EXPECT_NE(mac, mac3);
}

}  // namespace
