/**
 * @file
 * Property-based network suites: ECMP spreading, random-traffic delivery
 * across a matrix of topology shapes, sustained lossless traffic through
 * the full fabric with zero switch drops, and calibration guards that
 * pin the Figure 10 latency bands against regressions.
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/cloud.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace {

using namespace ccsim;
using sim::EventQueue;

class CollectorSink : public net::PacketSink
{
  public:
    std::vector<net::PacketPtr> packets;
    void acceptPacket(const net::PacketPtr &pkt) override
    {
        packets.push_back(pkt);
    }
};

TEST(Ecmp, FlowsSpreadAcrossEqualRoutes)
{
    EventQueue eq;
    net::Switch sw(eq, net::SwitchConfig{});
    // Two equal-cost uplinks.
    net::Link up0(eq, "u0", 40.0, 1.0), up1(eq, "u1", 40.0, 1.0);
    CollectorSink s0, s1;
    up0.attachA(&s0);
    up1.attachA(&s1);
    const int p0 = sw.addPort(&up0.bToA());
    const int p1 = sw.addPort(&up1.bToA());
    sw.setDefaultRoutes({p0, p1});
    net::Link in(eq, "in", 40.0, 1.0);
    const int pi = sw.addPort(&in.bToA());

    // 200 distinct flows; each flow must stick to one path.
    std::map<std::uint16_t, int> flow_path;
    for (std::uint16_t flow = 0; flow < 200; ++flow) {
        for (int k = 0; k < 3; ++k) {
            auto pkt = net::makePacket();
            pkt->ipSrc = {1};
            pkt->ipDst = {2};
            pkt->srcPort = flow;
            pkt->payloadBytes = 64;
            sw.portSink(pi)->acceptPacket(pkt);
        }
    }
    eq.runAll();
    // Roughly even split (hash-based), and each flow on exactly one path.
    EXPECT_GT(s0.packets.size(), 150u);
    EXPECT_GT(s1.packets.size(), 150u);
    EXPECT_EQ(s0.packets.size() + s1.packets.size(), 600u);
    std::map<std::uint16_t, std::set<int>> paths;
    for (const auto &p : s0.packets)
        paths[p->srcPort].insert(0);
    for (const auto &p : s1.packets)
        paths[p->srcPort].insert(1);
    for (const auto &[flow, set] : paths)
        EXPECT_EQ(set.size(), 1u) << "flow " << flow << " split";
}

class TopologyShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>>
{
};

TEST_P(TopologyShapes, RandomTrafficAllDelivered)
{
    auto [hosts, racks, l1s, pods, l2s] = GetParam();
    EventQueue eq;
    net::TopologyConfig cfg;
    cfg.hostsPerRack = hosts;
    cfg.racksPerPod = racks;
    cfg.l1PerPod = l1s;
    cfg.pods = pods;
    cfg.l2Count = l2s;
    net::Topology topo(eq, cfg);

    std::vector<std::unique_ptr<CollectorSink>> sinks;
    for (int i = 0; i < topo.numHosts(); ++i) {
        sinks.push_back(std::make_unique<CollectorSink>());
        topo.attachHostDevice(i, sinks.back().get());
    }

    sim::Rng rng(55);
    std::vector<int> expected(topo.numHosts(), 0);
    const int kPackets = 300;
    for (int i = 0; i < kPackets; ++i) {
        const int src =
            static_cast<int>(rng.uniformInt(std::uint64_t(topo.numHosts())));
        int dst;
        do {
            dst = static_cast<int>(
                rng.uniformInt(std::uint64_t(topo.numHosts())));
        } while (dst == src);
        auto pkt = net::makePacket();
        pkt->ipSrc = topo.host(src).addr;
        pkt->ipDst = topo.host(dst).addr;
        pkt->payloadBytes = static_cast<std::uint32_t>(
            64 + rng.uniformInt(std::uint64_t{1200}));
        topo.hostTx(src).send(pkt);
        ++expected[dst];
    }
    eq.runAll();
    for (int i = 0; i < topo.numHosts(); ++i)
        EXPECT_EQ(static_cast<int>(sinks[i]->packets.size()), expected[i])
            << "host " << i;
    EXPECT_EQ(topo.totalSwitchDrops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyShapes,
    ::testing::Values(std::tuple{2, 2, 1, 1, 1},   // minimal
                      std::tuple{4, 3, 2, 2, 2},   // moderate
                      std::tuple{8, 2, 2, 3, 2},   // many pods
                      std::tuple{3, 4, 3, 2, 3},   // wide fabric
                      std::tuple{24, 2, 2, 1, 1})); // full racks

TEST(LosslessFabric, SustainedLtlLoadZeroDrops)
{
    // Multiple LTL pairs saturating shared fabric links: PFC + DC-QCN
    // must keep the lossless class at exactly zero switch drops.
    EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 1;  // single L1: deliberate bottleneck
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    cfg.shellTemplate.ltl.maxConnections = 16;
    cfg.shellTemplate.roleSlots = 2;
    core::ConfigurableCloud cloud(eq, cfg);

    struct CountRole : fpga::Role {
        int port = -1;
        int received = 0;
        std::string name() const override { return "count"; }
        std::uint32_t areaAlms() const override { return 100; }
        void attach(fpga::Shell &, int p) override { port = p; }
        void onMessage(const router::ErMessagePtr &msg) override
        {
            if (msg->srcEndpoint == fpga::kErPortLtl)
                ++received;
        }
    };
    // Cross-rack pairs: (0->4), (1->5), (2->6), (3->7) all share the
    // TOR-to-L1 uplinks.
    std::vector<std::unique_ptr<CountRole>> rxs;
    const int kPerSender = 120;
    std::vector<core::LtlChannel> channels;  // keep connections open
    for (int s = 0; s < 4; ++s) {
        rxs.push_back(std::make_unique<CountRole>());
        ASSERT_GE(cloud.shell(4 + s).addRole(rxs.back().get()), 0);
        auto ch = cloud.openLtl(s, 4 + s, rxs.back()->port);
        for (int i = 0; i < kPerSender; ++i)
            cloud.shell(s).ltlEngine()->sendMessage(ch.sendConn(), 1408);
        channels.push_back(std::move(ch));
    }
    eq.runFor(sim::fromMillis(100));
    for (auto &rx : rxs)
        EXPECT_EQ(rx->received, kPerSender);
    EXPECT_EQ(cloud.topology().totalSwitchDrops(), 0u);
}

// ---------------------------------------------------------------------
// Calibration guards: pin the Figure 10 bands so refactors cannot
// silently move the reproduced results.
// ---------------------------------------------------------------------

struct NullRole : fpga::Role {
    int port = -1;
    std::string name() const override { return "null"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &) override {}
};

class Fig10Guard
    : public ::testing::TestWithParam<std::tuple<int, double, double>>
{
};

TEST_P(Fig10Guard, TierRttWithinCalibratedBand)
{
    auto [dst, lo_us, hi_us] = GetParam();
    EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 24;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 2;
    cfg.topology.l2Count = 2;
    cfg.createNics = false;
    cfg.shellTemplate.ltl.maxConnections = 8;
    core::ConfigurableCloud cloud(eq, cfg);

    NullRole sink;
    ASSERT_GE(cloud.shell(dst).addRole(&sink), 0);
    auto ch = cloud.openLtl(0, dst, sink.port);
    auto *engine = cloud.shell(0).ltlEngine();
    for (int i = 0; i < 60; ++i) {
        eq.scheduleAfter(i * 20 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 64);
                         });
    }
    eq.runFor(sim::fromMillis(3));
    ASSERT_GE(engine->rttUs().count(), 60u);
    const double avg = engine->rttUs().mean();
    EXPECT_GE(avg, lo_us);
    EXPECT_LE(avg, hi_us);
}

INSTANTIATE_TEST_SUITE_P(
    Bands, Fig10Guard,
    ::testing::Values(std::tuple{1, 2.7, 3.1},    // L0: paper 2.88
                      std::tuple{24, 7.2, 8.3},   // L1: paper 7.72
                      std::tuple{48, 17.5, 20.5}));  // L2: paper 18.71

TEST(Fig6Guard, AccelerationGainNearPaper)
{
    // Coarse guard on the 2.25x headline (few points, short runs).
    auto capacity = [](bool use_fpga) {
        EventQueue eq;
        std::unique_ptr<host::LocalFpgaAccelerator> accel;
        if (use_fpga)
            accel = std::make_unique<host::LocalFpgaAccelerator>(eq);
        host::RankingServer server(eq, host::RankingServiceParams{},
                                   accel.get(), 17);
        host::PoissonLoadGenerator gen(eq, 20000.0,
                                       [&] { server.submitQuery(); }, 19);
        gen.start();
        eq.runUntil(sim::fromSeconds(8.0));
        gen.stop();
        return server.completed() / 8.0;
    };
    const double gain = capacity(true) / capacity(false);
    EXPECT_GE(gain, 1.9);
    EXPECT_LE(gain, 2.6);
}

}  // namespace
