/**
 * @file
 * Correlated failure domains: the FailureDomainMap hierarchy, TOR hard
 * deaths and gray spine degradation (including on never-touched lazy
 * racks), domain-level conviction in the HealthMonitor (one rack = one
 * event), the ResourceManager's two-phase domain failure report,
 * rack/pod anti-affinity placement with its ablation, the rate-limited
 * mass-migration throttle, the ChaosEngine's scripted campaigns, the
 * fluid-model stall interplay, and byte-identity of sharded correlated
 * fault schedules across worker counts.
 */
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "fault/chaos.hpp"
#include "fault/failure_domain.hpp"
#include "fault/fault.hpp"
#include "haas/haas.hpp"
#include "haas/health_monitor.hpp"
#include "net/fluid.hpp"
#include "obs/metrics.hpp"
#include "obs/sharded_obs.hpp"
#include "obs/timeseries.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded_queue.hpp"

namespace {

using namespace ccsim;
using fault::FaultConfig;
using fault::FaultInjector;
using sim::EventQueue;
using sim::TimePs;

struct NullRole : fpga::Role {
    int port = -1;
    std::string name() const override { return "null"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &) override {}
};

/** 2 pods x 2 racks x 4 hosts: enough hierarchy for domain tests. */
core::CloudConfig
domainCloud(bool lazy = false)
{
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 2;
    cfg.topology.l2Count = 2;
    cfg.createNics = false;
    cfg.lazyHosts = lazy;
    cfg.shellTemplate.ltl.maxConnections = 16;
    return cfg;
}

// ---------------------------------------------------------------------
// The failure-domain hierarchy is pure arithmetic over the geometry.
// ---------------------------------------------------------------------

TEST(FailureDomainMap, ArithmeticMatchesGeometry)
{
    const fault::FailureDomainMap map(4, 2, 3);  // 4/rack, 2 racks/pod
    EXPECT_EQ(map.hosts(), 24);
    EXPECT_EQ(map.racks(), 6);
    EXPECT_EQ(map.pods(), 3);

    // Host 13 = pod 1, second rack, host 1 within it.
    EXPECT_EQ(map.podOf(13), 1);
    EXPECT_EQ(map.rackOf(13), 3);
    EXPECT_EQ(map.podOfRack(3), 1);
    EXPECT_EQ(map.rackIndexInPod(3), 1);
    EXPECT_EQ(map.rackId(1, 1), 3);

    EXPECT_EQ(map.rackHosts(3), (std::vector<int>{12, 13, 14, 15}));
    EXPECT_EQ(map.podHosts(2), (std::vector<int>{16, 17, 18, 19, 20, 21,
                                                 22, 23}));
    // Every host maps into exactly one rack of its pod.
    for (int h = 0; h < map.hosts(); ++h)
        EXPECT_EQ(map.podOfRack(map.rackOf(h)), map.podOf(h));
}

// ---------------------------------------------------------------------
// Correlated injectors: one TOR death is the whole rack at once.
// ---------------------------------------------------------------------

TEST(CorrelatedFaults, TorDeathDarkensWholeLazyRack)
{
    // Regression: a TOR hard death aimed at a rack nobody ever touched
    // must materialize its stubs deterministically and darken every
    // member — not crash, not no-op.
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(true));
    FaultInjector inj(eq, cloud);

    const auto rack = inj.domains().rackHosts(inj.domains().rackId(1, 1));
    for (int h : rack)
        ASSERT_FALSE(cloud.serverMaterialized(h));

    inj.failTor(1, 1);
    eq.runFor(sim::fromMicros(100));
    EXPECT_TRUE(inj.torFailed(1, 1));
    EXPECT_EQ(inj.torFails(), 1u);
    EXPECT_EQ(inj.domainFaults(), 1u);
    for (int h : rack) {
        EXPECT_TRUE(cloud.serverMaterialized(h));
        EXPECT_FALSE(cloud.nodeReachable(h));
    }
    // The blast radius is exactly one rack: its pod-sibling rack and the
    // other pod stay untouched stubs.
    for (int h : inj.domains().rackHosts(inj.domains().rackId(1, 0)))
        EXPECT_FALSE(cloud.serverMaterialized(h));

    inj.repairTor(1, 1);
    eq.runFor(sim::fromMicros(100));
    EXPECT_FALSE(inj.torFailed(1, 1));
    for (int h : rack)
        EXPECT_TRUE(cloud.nodeReachable(h));
}

TEST(CorrelatedFaults, BrownoutReachesNeverTouchedLazyRack)
{
    // A switch-level brownout is pure switch state: it must work on a
    // rack whose hosts are all stubs, and clear on schedule.
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(true));
    FaultInjector inj(eq, cloud);

    inj.switchBrownout(1, 0, 0.5, true, sim::fromMicros(400));
    eq.runFor(sim::fromMicros(100));
    EXPECT_TRUE(cloud.topology().tor(1, 0).inBrownout());
    eq.runFor(sim::fromMillis(1));
    EXPECT_FALSE(cloud.topology().tor(1, 0).inBrownout());
}

TEST(CorrelatedFaults, GraySpineStaysHeartbeatReachable)
{
    // Gray degradation is the nasty case: frames drop and latency
    // inflates, but no link is admin-down — every host still answers
    // the management path, so per-host liveness checks see nothing.
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(false));
    FaultInjector inj(eq, cloud);

    inj.graySpineDegrade(1, 0.01, 300 * sim::kNanosecond);
    eq.runFor(sim::fromMicros(100));
    EXPECT_EQ(inj.grayFaults(), 1u);
    for (int h = 0; h < cloud.numServers(); ++h)
        EXPECT_TRUE(cloud.nodeReachable(h));
    inj.graySpineClear(1);
    eq.runFor(sim::fromMicros(100));
}

// ---------------------------------------------------------------------
// Domain conviction: one dead TOR is one event, not N detections.
// ---------------------------------------------------------------------

TEST(DomainConviction, DeadTorConvictsRackAsOneEvent)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(false));
    haas::HealthMonitorConfig hc;
    hc.withHeartbeat(100 * sim::kMicrosecond, 10 * sim::kMicrosecond)
        .withSuspicion(3.0, 1.0, 0.0)
        .withDomainConviction(2, 4);
    haas::HealthMonitor hm(eq, cloud.resourceManager(), hc);
    cloud.attachHealthMonitor(hm);

    FaultInjector inj(eq, cloud, FaultConfig{}.withSelfReport(false));
    hm.start();
    eq.runFor(sim::fromMicros(250));

    inj.failTor(0, 1);
    // Running for exactly the advertised bound (plus one heartbeat of
    // slack for the in-flight sweep) must be enough to convict.
    eq.runFor(hm.domainDetectionBound() + hc.heartbeatPeriod);

    EXPECT_EQ(hm.domainConvictions(), 1u);
    EXPECT_EQ(hm.detections(), 0u) << "a convicted rack must not also "
                                      "count per-host detections";
    EXPECT_EQ(cloud.resourceManager().failedCount(), 4);
    hm.stop();
}

TEST(DomainConviction, TwoPhaseDomainReportKeepsFailoverOutOfDyingRack)
{
    // Without the two-phase report, the SM's inline failover for the
    // first convicted member can be granted a sibling of the same rack
    // that merely had not been marked failed yet.
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(false));
    haas::ResourceManager &rm = cloud.resourceManager();

    NullRole role;
    haas::ServiceManager sm(eq, rm, "svc", [&](int) { return &role; });
    ASSERT_TRUE(sm.deploy(2));  // lands on hosts 0,1 (rack 0)
    sm.enableAutoHeal(2);
    for (int h : sm.instances())
        ASSERT_EQ(rm.nodeRack(h), 0);

    rm.reportDomainFailure({0, 1, 2, 3});
    eq.runFor(sim::fromMillis(1));

    ASSERT_EQ(sm.instances().size(), 2u);
    for (int h : sm.instances())
        EXPECT_NE(rm.nodeRack(h), 0)
            << "replacement host " << h << " landed in the dying rack";
    EXPECT_EQ(rm.failedCount(), 4);
}

TEST(DomainConviction, DomainReportIsIdempotentPerHost)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(false));
    haas::ResourceManager &rm = cloud.resourceManager();

    rm.reportFailure(0);
    rm.reportDomainFailure({0, 1, 2, 3});
    rm.reportDomainFailure({0, 1, 2, 3});
    EXPECT_EQ(rm.failuresReported(), 4u);
    EXPECT_EQ(rm.failedCount(), 4);
}

// ---------------------------------------------------------------------
// Anti-affinity placement and its ablation.
// ---------------------------------------------------------------------

TEST(AntiAffinity, PlacementHonorsRackAndPodCaps)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(false));
    haas::ResourceManager &rm = cloud.resourceManager();

    NullRole role;
    haas::ServiceManager sm(eq, rm, "svc", [&](int) { return &role; });
    haas::LeaseConstraints lc;
    lc.withAntiAffinity(1, 2);
    ASSERT_TRUE(sm.deploy(4, lc));

    std::set<int> racks;
    std::map<int, int> perPod;
    for (int h : sm.instances()) {
        racks.insert(rm.nodeRack(h));
        ++perPod[cloud.topology().host(h).pod];
    }
    EXPECT_EQ(racks.size(), 4u) << "maxPerRack=1 must spread each "
                                   "instance onto its own rack";
    for (const auto &[pod, n] : perPod)
        EXPECT_LE(n, 2);
    EXPECT_GT(rm.affinitySkips(), 0u);
}

TEST(AntiAffinity, AblationPilesInstancesIntoOneRack)
{
    // The ablation the chaos campaign measures: with no constraints the
    // free-list order piles the service into the first rack, so one TOR
    // death amputates everything.
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(false));
    haas::ResourceManager &rm = cloud.resourceManager();

    NullRole role;
    haas::ServiceManager sm(eq, rm, "svc", [&](int) { return &role; });
    ASSERT_TRUE(sm.deploy(4));
    for (int h : sm.instances())
        EXPECT_EQ(rm.nodeRack(h), 0);
    EXPECT_EQ(rm.affinitySkips(), 0u);
}

TEST(AntiAffinity, CapsSurviveFailover)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(false));
    haas::ResourceManager &rm = cloud.resourceManager();

    NullRole role;
    haas::ServiceManager sm(eq, rm, "svc", [&](int) { return &role; });
    haas::LeaseConstraints lc;
    lc.withAntiAffinity(1);
    ASSERT_TRUE(sm.deploy(3, lc));
    sm.enableAutoHeal(3, lc);

    const int victim = sm.instances().front();
    rm.reportFailure(victim);
    eq.runFor(sim::fromMillis(1));

    ASSERT_EQ(sm.instances().size(), 3u);
    std::set<int> racks;
    for (int h : sm.instances())
        racks.insert(rm.nodeRack(h));
    EXPECT_EQ(racks.size(), 3u)
        << "the replacement must honor the rack cap too";
}

// ---------------------------------------------------------------------
// The mass-migration throttle: a dead rack is a paced evacuation.
// ---------------------------------------------------------------------

TEST(MigrationThrottle, MassFailureDrainsOnePerGap)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(false));
    haas::ResourceManager &rm = cloud.resourceManager();

    NullRole role;
    haas::ServiceManager sm(eq, rm, "svc", [&](int) { return &role; });
    ASSERT_TRUE(sm.deploy(4));  // all of rack 0
    sm.enableAutoHeal(4);
    const TimePs gap = 50 * sim::kMicrosecond;
    sm.setMigrationPolicy(gap, /*self_pump=*/true);

    rm.reportDomainFailure({0, 1, 2, 3});
    eq.runFor(sim::fromMicros(10));
    // The first failover is immediate; the other three queue.
    EXPECT_EQ(sm.failovers(), 1u);
    EXPECT_EQ(sm.migrationsQueued(), 3u);

    eq.runFor(sim::fromMillis(1));
    EXPECT_EQ(sm.failovers(), 4u);
    EXPECT_EQ(sm.migrationQueueDepth(), 0);
    EXPECT_GE(sm.minMigrationGapObserved(), gap);
    for (int h : sm.instances())
        EXPECT_NE(rm.nodeRack(h), 0);
}

// ---------------------------------------------------------------------
// The chaos engine: declarative campaigns, deterministic execution.
// ---------------------------------------------------------------------

TEST(ChaosEngine, TimedAndTriggeredPhasesFireInOrder)
{
    EventQueue eq;
    bool armed = false;
    int torKilled = 0, drained = 0;

    fault::ChaosScenario sc;
    sc.withPhase("tor-death", sim::fromMicros(200), [&] { ++torKilled; })
        .withTriggeredPhase(
            "drain", sim::fromMicros(100), [&] { return armed; },
            [&] { ++drained; });

    obs::TimeSeriesHub hub(
        obs::TimeSeriesConfig{}.withWindow(sim::fromMillis(10)));
    std::ostringstream out;
    hub.exportTo(&out);

    fault::ChaosEngine chaos(eq, sc);
    chaos.setPollPeriod(50 * sim::kMicrosecond);
    chaos.setMarkerHub(&hub);
    chaos.start();

    eq.runFor(sim::fromMicros(400));
    EXPECT_EQ(torKilled, 1);
    EXPECT_EQ(drained, 0) << "trigger must wait for its predicate";
    EXPECT_FALSE(chaos.done());

    armed = true;
    eq.runFor(sim::fromMicros(400));
    EXPECT_EQ(drained, 1);
    EXPECT_TRUE(chaos.done());
    EXPECT_EQ(chaos.phasesFired(), 2u);
    EXPECT_EQ(chaos.firedPhases(),
              (std::vector<std::string>{"tor-death", "drain"}));

    // Every firing left a chaos marker in the JSONL stream.
    const std::string lines = out.str();
    EXPECT_NE(lines.find("\"type\":\"chaos\""), std::string::npos);
    EXPECT_NE(lines.find("\"phase\":\"tor-death\""), std::string::npos);
    EXPECT_NE(lines.find("\"phase\":\"drain\""), std::string::npos);
    EXPECT_NE(lines.find("\"kind\":\"injected\""), std::string::npos);
}

TEST(ChaosEngine, EmitsDetectedMarkerOnDomainConviction)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(false));
    haas::HealthMonitorConfig hc;
    hc.withHeartbeat(100 * sim::kMicrosecond, 10 * sim::kMicrosecond)
        .withSuspicion(3.0, 1.0, 0.0)
        .withDomainConviction(2, 4);
    haas::HealthMonitor hm(eq, cloud.resourceManager(), hc);
    cloud.attachHealthMonitor(hm);
    FaultInjector inj(eq, cloud, FaultConfig{}.withSelfReport(false));

    // The triggered phase keeps the engine polling until the monitor
    // convicts — the shape every campaign uses to react to detection.
    bool reacted = false;
    fault::ChaosScenario sc;
    sc.withPhase("tor-death", sim::fromMicros(300),
                 [&] { inj.failTor(0, 0); })
        .withTriggeredPhase(
            "react", sim::fromMicros(300),
            [&] { return hm.domainConvictions() > 0; },
            [&] { reacted = true; });
    obs::TimeSeriesHub hub(
        obs::TimeSeriesConfig{}.withWindow(sim::fromMillis(10)));
    std::ostringstream out;
    hub.exportTo(&out);
    fault::ChaosEngine chaos(eq, sc);
    chaos.setPollPeriod(50 * sim::kMicrosecond);
    chaos.setMarkerHub(&hub);
    chaos.watchHealth(&hm);
    hm.start();
    chaos.start();

    eq.runFor(sim::fromMillis(2));
    EXPECT_EQ(hm.domainConvictions(), 1u);
    EXPECT_TRUE(reacted);
    const std::string lines = out.str();
    EXPECT_NE(lines.find("\"phase\":\"domain-conviction\""),
              std::string::npos);
    EXPECT_NE(lines.find("\"kind\":\"detected\""), std::string::npos);
    hm.stop();
}

// ---------------------------------------------------------------------
// Fluid interplay: dead hops stall flows without losing a byte.
// ---------------------------------------------------------------------

TEST(FluidFaults, TorDeathStallsFlowsConservatively)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, domainCloud(false));
    net::Topology &topo = cloud.topology();
    net::FluidTrafficModel fm(eq, topo);
    FaultInjector inj(eq, cloud);

    // One flow through the doomed rack, one witness flow elsewhere.
    const auto victim = fm.addFlow(topo.hostIndex(0, 0, 0),
                                   topo.hostIndex(1, 0, 0), 800'000'000);
    const auto witness = fm.addFlow(topo.hostIndex(0, 1, 1),
                                    topo.hostIndex(1, 1, 2), 800'000'000);

    eq.runFor(sim::fromMillis(1));
    fm.foldAll();
    const std::uint64_t victimBytesAtCut = fm.flow(victim)->fluidBytes;
    EXPECT_GT(victimBytesAtCut, 0u);

    inj.failTor(0, 0);
    eq.runFor(sim::fromMicros(10));
    fm.foldAll();
    EXPECT_EQ(fm.stalledFlows(), 1u);
    EXPECT_TRUE(fm.flow(victim)->stalled);
    EXPECT_FALSE(fm.flow(witness)->stalled);

    // A stalled flow accrues nothing, however long the outage.
    eq.runFor(sim::fromMillis(2));
    fm.foldAll();
    EXPECT_EQ(fm.flow(victim)->fluidBytes, victimBytesAtCut);
    EXPECT_GT(fm.flow(witness)->fluidBytes, victimBytesAtCut);

    // Repair un-stalls it at the next fold and accrual resumes from
    // there; conservation holds over the whole cut/repair history.
    inj.repairTor(0, 0);
    eq.runFor(sim::fromMicros(10));
    fm.foldAll();  // this fold discovers the healed path
    EXPECT_EQ(fm.stalledFlows(), 0u);
    eq.runFor(sim::fromMillis(1));
    fm.foldAll();
    EXPECT_GT(fm.flow(victim)->fluidBytes, victimBytesAtCut);
    EXPECT_GE(fm.stallTransitions(), 1u);
    const net::FluidConservation c = fm.verify();
    EXPECT_TRUE(c.ok) << "channel credits " << c.channelCredits
                      << " != expected " << c.expectedChannelCredits;
}

// ---------------------------------------------------------------------
// Sharded injection: byte-identical across worker counts.
// ---------------------------------------------------------------------

std::string
shardedCorrelatedRun(int threads)
{
    auto cfg = domainCloud(true);
    cfg.shards = threads;
    obs::ShardedObservability hubs(cfg.topology.pods + 1);
    cfg.shardObs = &hubs;
    sim::ShardedEventQueue sq(core::ConfigurableCloud::shardPlan(cfg));
    core::ConfigurableCloud cloud(sq, cfg);

    FaultConfig fc;
    fc.withSeed(7)
        .withTorFail(sim::fromMicros(300), 0, 1, sim::fromMicros(900))
        .withGraySpine(sim::fromMicros(500), 1, 0.02,
                       200 * sim::kNanosecond, sim::fromMicros(600))
        .withPodPowerEvent(sim::fromMicros(700), 1, sim::fromMicros(40),
                           sim::fromMicros(300))
        .withRollingMaintenance(sim::fromMicros(1600), 0,
                                sim::fromMicros(200),
                                sim::fromMicros(250));
    FaultInjector inj(sq, cloud, fc);
    inj.arm();

    net::FluidTrafficModel fm(sq, cloud.topology());
    for (int k = 0; k < 6; ++k)
        fm.addFlow(cloud.topology().hostIndex(0, k % 2, k % 4),
                   cloud.topology().hostIndex(1, (k + 1) % 2, (3 * k) % 4),
                   400'000'000);

    sq.runFor(sim::fromMillis(4));
    fm.foldAll();
    EXPECT_TRUE(fm.verify().ok);
    EXPECT_EQ(inj.domainFaults(), 4u);
    EXPECT_GT(inj.recovered(), 0u);
    return hubs.mergedSnapshotJson();
}

TEST(ShardedFaults, CorrelatedScheduleByteIdenticalAcrossWorkers)
{
    const std::string base = shardedCorrelatedRun(1);
    EXPECT_NE(base.find("fault."), std::string::npos);
    for (int threads : {2, 4}) {
        EXPECT_EQ(shardedCorrelatedRun(threads), base)
            << "sharded fault schedule diverged at " << threads
            << " workers";
    }
}

}  // namespace
