/**
 * @file
 * Deeper full-stack integration and failure-injection tests: remote
 * service failover with live traffic, LTL failure detection feeding
 * HaaS, pool scaling, congestion back-pressure end to end, crypto
 * key-lifecycle behaviour, and SEU recovery under traffic.
 */
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cloud.hpp"
#include "roles/crypto_role.hpp"
#include "roles/dnn_role.hpp"
#include "roles/ranking/ranking_role.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using core::CloudConfig;
using core::ConfigurableCloud;
using sim::EventQueue;

CloudConfig
mediumCloud()
{
    CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 2;
    cfg.topology.l2Count = 2;
    cfg.shellTemplate.ltl.maxConnections = 64;
    cfg.shellTemplate.roleSlots = 2;
    return cfg;
}

/** Client helper: drives DnnRequests into a set of pool hosts. */
struct PoolClient {
    EventQueue &eq;
    ConfigurableCloud &cloud;
    int host;
    roles::ForwarderRole forwarder;
    struct Target {
        int host;
        core::LtlChannel req, rep;
    };
    std::vector<Target> targets;
    std::unordered_map<std::uint64_t, sim::TimePs> outstanding;
    std::uint64_t nextId = 1;
    int responses = 0;

    PoolClient(EventQueue &q, ConfigurableCloud &c, int h)
        : eq(q), cloud(c), host(h)
    {
        EXPECT_GE(cloud.shell(host).addRole(&forwarder), 0);
        cloud.shell(host).setHostRxHandler(
            [this](int port, const router::ErMessagePtr &msg) {
                if (port != forwarder.port())
                    return;
                auto delivery =
                    std::static_pointer_cast<fpga::LtlDelivery>(
                        msg->payload);
                if (!delivery || !delivery->appPayload)
                    return;
                auto resp =
                    std::static_pointer_cast<roles::DnnResponse>(
                        delivery->appPayload);
                if (outstanding.erase(resp->requestId))
                    ++responses;
            });
    }

    void retarget(const std::vector<int> &instances)
    {
        targets.clear();
        for (int instance : instances) {
            Target t;
            t.host = instance;
            t.req = cloud.openLtl(host, instance, fpga::kErPortRole0);
            t.rep = cloud.openLtl(instance, host, forwarder.port());
            targets.push_back(std::move(t));
        }
    }

    void send()
    {
        const Target &t = targets[nextId % targets.size()];
        auto req = std::make_shared<roles::DnnRequest>();
        req->requestId = nextId++;
        req->replyConn = t.rep.sendConn();
        outstanding[req->requestId] = eq.now();
        auto fwd = std::make_shared<roles::ForwarderRole::ForwardRequest>();
        fwd->sendConn = t.req.sendConn();
        fwd->bytes = 256;
        fwd->inner = std::move(req);
        cloud.shell(host).sendFromHost(forwarder.port(), 256,
                                       std::move(fwd));
    }
};

TEST(Failover, RemoteServiceSurvivesNodeFailureWithLiveTraffic)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, mediumCloud());

    std::vector<std::unique_ptr<roles::DnnRole>> roles_storage;
    haas::ServiceManager sm(eq, cloud.resourceManager(), "dnn",
                            [&](int) -> fpga::Role * {
                                roles_storage.push_back(
                                    std::make_unique<roles::DnnRole>(eq));
                                return roles_storage.back().get();
                            });
    cloud.resourceManager().subscribeFailures(
        [&](int h, std::uint64_t) { sm.handleFailure(h); });
    ASSERT_TRUE(sm.deploy(2));

    PoolClient client(eq, cloud, 10);
    client.retarget(sm.instances());

    // Phase 1: 8 requests against the healthy pool.
    for (int i = 0; i < 8; ++i)
        client.send();
    eq.runFor(sim::fromMicros(50000));
    EXPECT_EQ(client.responses, 8);

    // Phase 2: kill one instance mid-service, re-resolve, keep going.
    const int victim = sm.instances()[0];
    cloud.resourceManager().reportFailure(victim);
    ASSERT_EQ(sm.instances().size(), 2u);
    client.retarget(sm.instances());
    for (int i = 0; i < 8; ++i)
        client.send();
    eq.runFor(sim::fromMicros(50000));
    EXPECT_EQ(client.responses, 16);
    EXPECT_EQ(sm.failovers(), 1u);
}

TEST(Failover, LtlTimeoutFeedsHaasFailureDetection)
{
    // "Timeouts can also be used to identify failing nodes quickly."
    EventQueue eq;
    auto cfg = mediumCloud();
    cfg.shellTemplate.ltl.maxRetries = 3;
    ConfigurableCloud cloud(eq, cfg);

    roles::DnnRole dnn(eq);
    ASSERT_GE(cloud.shell(5).addRole(&dnn), 0);
    auto ch = cloud.openLtl(0, 5, fpga::kErPortRole0);

    int reported_failure = -1;
    cloud.resourceManager().subscribeFailures(
        [&](int host, std::uint64_t) { reported_failure = host; });
    // Lease host 5 so its failure is lease-affecting.
    auto lease = cloud.resourceManager().acquire("svc", 6);
    ASSERT_TRUE(lease.has_value());

    cloud.shell(0).ltlEngine()->setFailureHandler(
        [&](std::uint16_t conn) {
            EXPECT_EQ(conn, ch.sendConn());
            // Control plane maps the connection to the node and reports.
            cloud.resourceManager().reportFailure(5);
        });

    // The remote FPGA goes dark (full reconfiguration takes the bridge
    // down for 2 s — far longer than maxRetries * 50 us).
    cloud.shell(5).reconfigureFull();
    auto req = std::make_shared<roles::DnnRequest>();
    req->requestId = 1;
    req->replyConn = 0;
    cloud.shell(0).ltlEngine()->sendMessage(ch.sendConn(), 256, req);
    eq.runFor(sim::fromMillis(10));
    EXPECT_EQ(reported_failure, 5);
    EXPECT_EQ(cloud.resourceManager().failedCount(), 1);
}

TEST(Scaling, ServiceManagerGrowsAndShrinksPool)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, mediumCloud());
    std::vector<std::unique_ptr<roles::DnnRole>> roles_storage;
    haas::ServiceManager sm(eq, cloud.resourceManager(), "dnn",
                            [&](int) -> fpga::Role * {
                                roles_storage.push_back(
                                    std::make_unique<roles::DnnRole>(eq));
                                return roles_storage.back().get();
                            });
    ASSERT_TRUE(sm.deploy(2));
    EXPECT_EQ(cloud.resourceManager().allocatedCount(), 2);

    // Demand grows: scale to 5.
    ASSERT_TRUE(sm.scaleTo(5));
    EXPECT_EQ(sm.instances().size(), 5u);
    EXPECT_EQ(cloud.resourceManager().allocatedCount(), 5);

    // Demand shrinks: scale to 1; FPGAs return to the global pool.
    ASSERT_TRUE(sm.scaleTo(1));
    EXPECT_EQ(sm.instances().size(), 1u);
    EXPECT_EQ(cloud.resourceManager().allocatedCount(), 1);
    EXPECT_EQ(cloud.resourceManager().freeCount(),
              cloud.numServers() - 1);
}

TEST(Congestion, ManySendersOneReceiverAllDelivered)
{
    // Incast: several FPGAs blast one receiver over the lossless class;
    // PFC + DC-QCN must deliver everything without lossless drops.
    EventQueue eq;
    ConfigurableCloud cloud(eq, mediumCloud());
    struct CountRole : fpga::Role {
        int port = -1;
        int received = 0;
        std::string name() const override { return "count"; }
        std::uint32_t areaAlms() const override { return 100; }
        void attach(fpga::Shell &, int p) override { port = p; }
        void onMessage(const router::ErMessagePtr &msg) override
        {
            if (msg->srcEndpoint == fpga::kErPortLtl)
                ++received;
        }
    } sink;
    ASSERT_GE(cloud.shell(0).addRole(&sink), 0);

    const std::vector<int> senders = {1, 2, 3, 4, 5, 6};
    const int kPerSender = 60;
    std::vector<core::LtlChannel> channels;  // keep connections open
    for (int s : senders) {
        auto ch = cloud.openLtl(s, 0, sink.port);
        for (int i = 0; i < kPerSender; ++i)
            cloud.shell(s).ltlEngine()->sendMessage(ch.sendConn(), 1408);
        channels.push_back(std::move(ch));
    }
    eq.runFor(sim::fromMillis(50));
    EXPECT_EQ(sink.received,
              static_cast<int>(senders.size()) * kPerSender);
    EXPECT_EQ(cloud.topology().totalSwitchDrops(), 0u);
}

TEST(CryptoLifecycle, RemovingFlowStopsEncryption)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, mediumCloud());
    roles::CryptoRoleParams params;
    params.suite = crypto::Suite::kAesGcm128;
    roles::CryptoRole crypto_a(eq, params);
    ASSERT_GE(cloud.shell(0).addRole(&crypto_a), 0);

    crypto::Key128 key{};
    key[0] = 0x11;
    roles::FlowKey flow{cloud.addressOf(0), cloud.addressOf(1), 7, 8, 17};
    crypto_a.addEncryptFlow(flow, key);

    std::vector<std::uint8_t> last_payload;
    cloud.nic(1).setReceiveHandler([&](const net::PacketPtr &pkt) {
        last_payload = pkt->data;
    });
    const std::vector<std::uint8_t> plaintext(32, 0x55);

    auto send = [&] {
        auto pkt = net::makePacket();
        pkt->ipDst = cloud.addressOf(1);
        pkt->srcPort = 7;
        pkt->dstPort = 8;
        pkt->data = plaintext;
        pkt->payloadBytes = 32;
        cloud.nic(0).sendPacket(pkt);
        eq.runAll();
    };

    send();
    EXPECT_NE(last_payload, plaintext);  // ciphertext on the wire

    crypto_a.removeFlow(flow);
    send();
    EXPECT_EQ(last_payload, plaintext);  // flow torn down: passthrough
}

TEST(CryptoLifecycle, WrongKeyDropsAtReceiver)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, mediumCloud());
    roles::CryptoRoleParams params;
    params.suite = crypto::Suite::kAesGcm128;
    roles::CryptoRole crypto_a(eq, params), crypto_b(eq, params);
    ASSERT_GE(cloud.shell(0).addRole(&crypto_a), 0);
    ASSERT_GE(cloud.shell(1).addRole(&crypto_b), 0);

    crypto::Key128 key_a{}, key_b{};
    key_a[0] = 1;
    key_b[0] = 2;  // mismatched
    roles::FlowKey flow{cloud.addressOf(0), cloud.addressOf(1), 7, 8, 17};
    crypto_a.addEncryptFlow(flow, key_a);
    crypto_b.addDecryptFlow(flow, key_b);

    int received = 0;
    cloud.nic(1).setReceiveHandler(
        [&](const net::PacketPtr &) { ++received; });
    auto pkt = net::makePacket();
    pkt->ipDst = cloud.addressOf(1);
    pkt->srcPort = 7;
    pkt->dstPort = 8;
    pkt->data.assign(48, 0x66);
    pkt->payloadBytes = 48;
    cloud.nic(0).sendPacket(pkt);
    eq.runAll();
    EXPECT_EQ(received, 0);
    EXPECT_EQ(crypto_b.authFailures(), 1u);
}

TEST(CryptoLifecycle, DramKeyStoreAddsLatency)
{
    EventQueue eq;
    roles::CryptoRoleParams sram;
    sram.keyStore = roles::KeyStore::kSram;
    roles::CryptoRoleParams dram = sram;
    dram.keyStore = roles::KeyStore::kDram;
    roles::CryptoRole role_sram(eq, sram), role_dram(eq, dram);
    EXPECT_GT(role_dram.packetLatency(1500),
              role_sram.packetLatency(1500));
}

TEST(Reliability, SeuHangRecoveryUnderTraffic)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, mediumCloud());
    roles::DnnRole dnn(eq);
    const int port = cloud.shell(0).addRole(&dnn);
    ASSERT_GE(port, 0);
    cloud.shell(0).startScrubbing(30 * sim::kSecond);

    int responses = 0;
    cloud.shell(0).setHostRxHandler(
        [&](int, const router::ErMessagePtr &) { ++responses; });
    auto send = [&] {
        auto req = std::make_shared<roles::DnnRequest>();
        req->requestId = 1;
        req->replyViaPcie = true;
        cloud.shell(0).sendFromHost(port, 128, req);
    };

    send();
    eq.runFor(sim::fromMillis(10));
    EXPECT_EQ(responses, 1);

    // An SEU hangs the role; scrubbing detects it within 30 s and
    // recovers it via partial reconfiguration (role messages dropped in
    // between; the bridge stays up throughout).
    cloud.shell(0).injectSeu(true);
    eq.runFor(31 * sim::kSecond);
    EXPECT_EQ(cloud.shell(0).roleHangsRecovered(), 1u);
    EXPECT_FALSE(cloud.shell(0).bridge().down());

    eq.runFor(sim::fromSeconds(1));  // partial reconfig completes
    send();
    eq.runFor(sim::fromMillis(10));
    EXPECT_EQ(responses, 2);
}

TEST(MultiService, RankingAndCryptoCoexistOnOneShell)
{
    // The production image runs ranking while all server traffic passes
    // through the bump; add flow crypto on the same shell (2 role slots).
    EventQueue eq;
    ConfigurableCloud cloud(eq, mediumCloud());

    roles::RankingRoleParams rp;
    rp.alms = 55340;
    roles::RankingRole ranking(eq, rp);
    roles::CryptoRoleParams cp;
    cp.alms = 20000;
    cp.suite = crypto::Suite::kAesGcm128;
    roles::CryptoRole crypto_role(eq, cp);

    const int rank_port = cloud.shell(0).addRole(&ranking);
    ASSERT_GE(rank_port, 0);
    ASSERT_GE(cloud.shell(0).addRole(&crypto_role), 0);

    crypto::Key128 key{};
    roles::FlowKey flow{cloud.addressOf(0), cloud.addressOf(2), 1, 2, 17};
    crypto_role.addEncryptFlow(flow, key);

    // Ranking request via PCIe while an encrypted packet transits.
    int rank_replies = 0;
    cloud.shell(0).setHostRxHandler(
        [&](int, const router::ErMessagePtr &) { ++rank_replies; });
    auto req = std::make_shared<roles::RankingRequest>();
    req->requestId = 1;
    req->docCount = 50;
    cloud.shell(0).sendFromHost(rank_port, 1024, req);

    auto pkt = net::makePacket();
    pkt->ipDst = cloud.addressOf(2);
    pkt->srcPort = 1;
    pkt->dstPort = 2;
    pkt->data.assign(64, 0x42);
    pkt->payloadBytes = 64;
    int nic_received = 0;
    cloud.nic(2).setReceiveHandler(
        [&](const net::PacketPtr &) { ++nic_received; });
    cloud.nic(0).sendPacket(pkt);

    eq.runAll();
    EXPECT_EQ(rank_replies, 1);
    EXPECT_EQ(nic_received, 1);
    EXPECT_EQ(crypto_role.packetsEncrypted(), 1u);
    EXPECT_EQ(ranking.requestsServed(), 1u);
}

TEST(PacketSwitch, ClassifiesLtlAndRoleTraffic)
{
    EventQueue eq;
    ConfigurableCloud cloud(eq, mediumCloud());
    struct CountRole : fpga::Role {
        int port = -1;
        int received = 0;
        std::string name() const override { return "count"; }
        std::uint32_t areaAlms() const override { return 100; }
        void attach(fpga::Shell &, int p) override { port = p; }
        void onMessage(const router::ErMessagePtr &msg) override
        {
            if (msg->srcEndpoint == fpga::kErPortLtl)
                ++received;
        }
    } sink;
    ASSERT_GE(cloud.shell(1).addRole(&sink), 0);
    auto ch = cloud.openLtl(0, 1, sink.port);
    cloud.shell(0).ltlEngine()->sendMessage(ch.sendConn(), 64);
    eq.runFor(sim::fromMicros(100));
    EXPECT_EQ(sink.received, 1);
    EXPECT_GE(cloud.shell(0).packetSwitch().ltlFramesSent(), 1u);
    EXPECT_EQ(cloud.shell(0).packetSwitch().rolePacketsSent(), 0u);

    // A role-generated raw packet goes out on the (lossy) role class.
    int nic_received = 0;
    net::PacketPtr seen;
    cloud.nic(2).setReceiveHandler([&](const net::PacketPtr &p) {
        ++nic_received;
        seen = p;
    });
    auto pkt = net::makePacket();
    pkt->ipDst = cloud.addressOf(2);
    pkt->payloadBytes = 200;
    EXPECT_TRUE(cloud.shell(0).injectRolePacket(pkt));
    eq.runAll();
    EXPECT_EQ(nic_received, 1);
    ASSERT_NE(seen, nullptr);
    EXPECT_EQ(seen->priority, net::kTcLossy);
    EXPECT_EQ(seen->ipSrc, cloud.addressOf(0));  // stamped by the shell
}

TEST(PacketSwitch, RedPolicerLimitsRoleBandwidth)
{
    EventQueue eq;
    auto cfg = mediumCloud();
    cfg.shellTemplate.packetSwitch.roleBandwidthLimitGbps = 0.5;
    cfg.shellTemplate.packetSwitch.roleBurstBytes = 16 * 1024;
    ConfigurableCloud cloud(eq, cfg);

    // Blast 10x the configured limit for a while.
    int accepted = 0;
    for (int i = 0; i < 2000; ++i) {
        eq.scheduleAfter(i * 2 * sim::kMicrosecond, [&cloud, &accepted] {
            auto pkt = net::makePacket();
            pkt->ipDst = cloud.addressOf(1);
            pkt->payloadBytes = 1400;  // ~5.9 Gb/s offered
            accepted += cloud.shell(0).injectRolePacket(pkt) ? 1 : 0;
        });
    }
    eq.runAll();
    EXPECT_LT(accepted, 1000);  // policed well below the offered rate
    EXPECT_GT(cloud.shell(0).packetSwitch().rolePacketsDropped(), 500u);
    EXPECT_GT(accepted, 50);  // but the allowed budget does flow
}

TEST(GoldenImage, BuggyImageCutsOffServerUntilPowerCycle)
{
    // Section II: "an FPGA failure, such as loading a buggy application,
    // could cut off network traffic to the server... power cycling the
    // server through the management port will bring the FPGA back into
    // a good configuration."
    EventQueue eq;
    ConfigurableCloud cloud(eq, mediumCloud());
    int received = 0;
    cloud.nic(0).setReceiveHandler(
        [&](const net::PacketPtr &) { ++received; });
    auto send_to_0 = [&] {
        auto pkt = net::makePacket();
        pkt->ipDst = cloud.addressOf(0);
        pkt->payloadBytes = 100;
        cloud.nic(1).sendPacket(pkt);
    };

    // Healthy at first.
    send_to_0();
    eq.runFor(sim::fromMillis(1));
    EXPECT_EQ(received, 1);

    // Load a buggy application image: the server goes dark.
    bool load_done = false;
    cloud.shell(0).loadApplicationImage(
        fpga::FpgaImage{"bad-role", false, 10000, /*buggy=*/true},
        [&] { load_done = true; });
    eq.runFor(3 * sim::kSecond);
    ASSERT_TRUE(load_done);
    EXPECT_TRUE(cloud.shell(0).bridge().down());
    send_to_0();
    eq.runFor(sim::fromMillis(1));
    EXPECT_EQ(received, 1);  // unreachable

    // Power cycle via the management path: golden bypass image loads and
    // the server is reachable again (roles remain unconfigured).
    cloud.shell(0).powerCycleViaManagementPath();
    EXPECT_TRUE(cloud.shell(0).board().runningGolden());
    send_to_0();
    eq.runFor(sim::fromMillis(1));
    EXPECT_EQ(received, 2);

    // Reloading a healthy application image restores the roles too.
    bool reload_done = false;
    cloud.shell(0).loadApplicationImage(
        fpga::FpgaImage{"good-role", false, 10000, false},
        [&] { reload_done = true; });
    eq.runFor(3 * sim::kSecond);
    ASSERT_TRUE(reload_done);
    EXPECT_FALSE(cloud.shell(0).bridge().down());
    EXPECT_FALSE(cloud.shell(0).board().runningGolden());
}

}  // namespace
