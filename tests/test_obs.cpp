/**
 * @file
 * Observability layer tests: metrics registry registration / lookup /
 * hierarchy, deterministic JSON snapshots (parsed back by a minimal
 * in-test JSON reader), Chrome trace-event export validity, and the
 * EventQueue-driven periodic sampler checked against a hand-computed
 * schedule.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using obs::MetricsRegistry;
using obs::Observability;
using obs::TraceWriter;
using sim::EventQueue;

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser, sufficient to round-trip the
// registry snapshots and trace files the obs layer emits.
// ---------------------------------------------------------------------------

struct JsonValue {
    enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;

    bool has(const std::string &key) const { return obj.count(key) != 0; }
    const JsonValue &at(const std::string &key) const { return obj.at(key); }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    /** Parse the whole document; sets ok=false on any syntax error. */
    JsonValue parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos != s.size())
            ok = false;
        return v;
    }

    bool good() const { return ok; }

  private:
    const std::string &s;
    std::size_t pos = 0;
    bool ok = true;

    void skipWs()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                                  s[pos] == '\n' || s[pos] == '\r'))
            ++pos;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s.compare(pos, n, word) == 0) {
            pos += n;
            return true;
        }
        ok = false;
        return false;
    }

    JsonValue value()
    {
        skipWs();
        if (pos >= s.size()) {
            ok = false;
            return {};
        }
        const char c = s[pos];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't') {
            JsonValue v;
            v.kind = JsonValue::kBool;
            v.boolean = true;
            literal("true");
            return v;
        }
        if (c == 'f') {
            JsonValue v;
            v.kind = JsonValue::kBool;
            literal("false");
            return v;
        }
        if (c == 'n') {
            literal("null");
            return {};
        }
        return numberValue();
    }

    JsonValue object()
    {
        JsonValue v;
        v.kind = JsonValue::kObject;
        consume('{');
        if (consume('}'))
            return v;
        do {
            JsonValue key = string();
            if (!consume(':')) {
                ok = false;
                return v;
            }
            v.obj[key.str] = value();
        } while (consume(','));
        if (!consume('}'))
            ok = false;
        return v;
    }

    JsonValue array()
    {
        JsonValue v;
        v.kind = JsonValue::kArray;
        consume('[');
        if (consume(']'))
            return v;
        do {
            v.arr.push_back(value());
        } while (consume(','));
        if (!consume(']'))
            ok = false;
        return v;
    }

    JsonValue string()
    {
        JsonValue v;
        v.kind = JsonValue::kString;
        if (!consume('"')) {
            ok = false;
            return v;
        }
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\' && pos < s.size()) {
                const char esc = s[pos++];
                switch (esc) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'r': c = '\r'; break;
                case 'b': c = '\b'; break;
                case 'f': c = '\f'; break;
                case 'u':
                    // Only ASCII escapes are emitted by the obs layer.
                    if (pos + 4 <= s.size()) {
                        c = static_cast<char>(
                            std::stoi(s.substr(pos, 4), nullptr, 16));
                        pos += 4;
                    } else {
                        ok = false;
                    }
                    break;
                default: c = esc; break;
                }
            }
            v.str.push_back(c);
        }
        if (pos >= s.size() || s[pos] != '"') {
            ok = false;
            return v;
        }
        ++pos;
        return v;
    }

    JsonValue numberValue()
    {
        JsonValue v;
        v.kind = JsonValue::kNumber;
        const std::size_t start = pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E'))
            ++pos;
        if (pos == start) {
            ok = false;
            return v;
        }
        v.number = std::stod(s.substr(start, pos - start));
        return v;
    }
};

JsonValue
parseJsonOrDie(const std::string &text)
{
    JsonParser p(text);
    JsonValue v = p.parse();
    EXPECT_TRUE(p.good()) << "invalid JSON: " << text.substr(0, 200);
    return v;
}

// ---------------------------------------------------------------------------
// Registry basics.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterGetOrCreateReturnsStableReference)
{
    MetricsRegistry reg;
    sim::Counter &c = reg.counter("ltl.node0.frames_sent");
    c.inc(3);
    // Second lookup is the same object.
    reg.counter("ltl.node0.frames_sent").inc(2);
    EXPECT_EQ(c.get(), 5u);
    ASSERT_NE(reg.findCounter("ltl.node0.frames_sent"), nullptr);
    EXPECT_EQ(reg.findCounter("ltl.node0.frames_sent")->get(), 5u);
    EXPECT_EQ(reg.findCounter("no.such.path"), nullptr);
}

TEST(MetricsRegistry, GaugeTracksValueAverageAndPeak)
{
    MetricsRegistry reg;
    obs::Gauge &g = reg.gauge("switch.tor0.q3.depth");
    g.set(0, 10.0);
    g.set(100, 30.0);  // 10 held for [0,100)
    g.set(200, 0.0);   // 30 held for [100,200)
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_DOUBLE_EQ(g.timeAverage(), (10.0 * 100 + 30.0 * 100) / 200.0);
    EXPECT_DOUBLE_EQ(g.peak(), 30.0);
}

TEST(MetricsRegistry, HistogramKeepsFirstBinning)
{
    MetricsRegistry reg;
    sim::LogHistogram &h = reg.histogram("ltl.node0.rtt_us", 0.5, 96);
    h.add(10.0);
    // Re-request with different binning: same instance, args ignored.
    sim::LogHistogram &again = reg.histogram("ltl.node0.rtt_us", 2.0, 8);
    EXPECT_EQ(&h, &again);
    EXPECT_EQ(again.count(), 1u);
}

TEST(MetricsRegistry, ProbesAreInvokableAndReplaceable)
{
    MetricsRegistry reg;
    double live = 7.0;
    reg.registerProbe("fpga.node0.pcie_util", [&live] { return live; });
    EXPECT_TRUE(reg.hasProbe("fpga.node0.pcie_util"));
    EXPECT_DOUBLE_EQ(reg.probeValue("fpga.node0.pcie_util"), 7.0);
    live = 9.0;
    EXPECT_DOUBLE_EQ(reg.probeValue("fpga.node0.pcie_util"), 9.0);
    // Re-registration replaces (supports component re-attachment).
    reg.registerProbe("fpga.node0.pcie_util", [] { return 1.0; });
    EXPECT_DOUBLE_EQ(reg.probeValue("fpga.node0.pcie_util"), 1.0);
}

TEST(MetricsRegistryDeathTest, CrossKindPathCollisionPanics)
{
    MetricsRegistry reg;
    reg.counter("ltl.node0.frames_sent");
    EXPECT_DEATH(reg.gauge("ltl.node0.frames_sent"), "different metric kind");
    EXPECT_DEATH(reg.registerProbe("ltl.node0.frames_sent",
                                   [] { return 0.0; }),
                 "different metric kind");
}

TEST(MetricsRegistry, DottedPathHierarchy)
{
    MetricsRegistry reg;
    reg.counter("ltl.node0.frames_sent");
    reg.counter("ltl.node1.frames_sent");
    reg.gauge("switch.tor0.q3.depth");
    reg.histogram("ltl.node0.rtt_us");
    reg.registerProbe("fpga.node0.pcie_util", [] { return 0.0; });

    const auto all = reg.paths();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));

    EXPECT_EQ(reg.children(""),
              (std::vector<std::string>{"fpga", "ltl", "switch"}));
    EXPECT_EQ(reg.children("ltl"),
              (std::vector<std::string>{"node0", "node1"}));
    EXPECT_EQ(reg.children("ltl.node0"),
              (std::vector<std::string>{"frames_sent", "rtt_us"}));
    EXPECT_TRUE(reg.children("ltl.node0.rtt_us").empty());
    EXPECT_TRUE(reg.children("bogus").empty());
}

// ---------------------------------------------------------------------------
// Snapshot round-trip.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SnapshotJsonRoundTrip)
{
    MetricsRegistry reg;
    reg.counter("ltl.node0.frames_sent").inc(42);
    obs::Gauge &g = reg.gauge("switch.tor0.q3.depth");
    g.set(0, 4.0);
    g.set(1000, 8.0);
    sim::LogHistogram &h = reg.histogram("ltl.node0.rtt_us");
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));
    reg.histogram("ltl.node1.rtt_us");  // empty histogram: count only
    reg.registerProbe("fpga.node0.pcie_util", [] { return 0.25; });

    const JsonValue root = parseJsonOrDie(reg.snapshotJson());
    ASSERT_EQ(root.kind, JsonValue::kObject);

    const JsonValue &counters = root.at("counters");
    EXPECT_DOUBLE_EQ(counters.at("ltl.node0.frames_sent").number, 42.0);

    const JsonValue &gauge = root.at("gauges").at("switch.tor0.q3.depth");
    EXPECT_DOUBLE_EQ(gauge.at("value").number, 8.0);
    EXPECT_DOUBLE_EQ(gauge.at("avg").number, 4.0);
    EXPECT_DOUBLE_EQ(gauge.at("peak").number, 8.0);

    const JsonValue &hist = root.at("histograms").at("ltl.node0.rtt_us");
    EXPECT_DOUBLE_EQ(hist.at("count").number, 100.0);
    EXPECT_DOUBLE_EQ(hist.at("mean").number, 50.5);
    EXPECT_DOUBLE_EQ(hist.at("min").number, 1.0);
    EXPECT_DOUBLE_EQ(hist.at("max").number, 100.0);
    // Log-binned percentiles are approximate; the registry default
    // binning keeps relative error under ~1%.
    EXPECT_NEAR(hist.at("p50").number, 50.0, 1.0);
    EXPECT_NEAR(hist.at("p99").number, 99.0, 1.5);

    // An empty histogram reports its count and omits the moments (no
    // infinities may leak into the JSON).
    const JsonValue &empty = root.at("histograms").at("ltl.node1.rtt_us");
    EXPECT_DOUBLE_EQ(empty.at("count").number, 0.0);
    EXPECT_FALSE(empty.has("min"));

    const JsonValue &probe = root.at("probes").at("fpga.node0.pcie_util");
    EXPECT_DOUBLE_EQ(probe.at("value").number, 0.25);
}

TEST(MetricsRegistry, SnapshotEscapesAndNonFiniteValues)
{
    MetricsRegistry reg;
    reg.counter("weird.\"quoted\"\\path");
    reg.registerProbe("bad.probe",
                      [] { return std::nan(""); });
    const std::string json = reg.snapshotJson();
    const JsonValue root = parseJsonOrDie(json);
    EXPECT_TRUE(root.at("counters").has("weird.\"quoted\"\\path"));
    // Non-finite probe values serialize as null, keeping the JSON valid.
    EXPECT_EQ(root.at("probes").at("bad.probe").at("value").kind,
              JsonValue::kNull);
}

// ---------------------------------------------------------------------------
// Trace writer.
// ---------------------------------------------------------------------------

TEST(TraceWriter, DisabledWriterRecordsNothing)
{
    TraceWriter tw;
    const int t = tw.track("ltl.node0");
    tw.complete(t, "ltl", "msg", 0, 1000);
    tw.instant(t, "ltl", "retransmit", 500);
    tw.counter("ltl", "rate", 0, 40.0);
    EXPECT_EQ(tw.eventCount(), 0u);
}

TEST(TraceWriter, TracksAreStablePerName)
{
    TraceWriter tw;
    const int a = tw.track("ltl.node0");
    const int b = tw.track("ltl.node1");
    EXPECT_NE(a, b);
    EXPECT_EQ(tw.track("ltl.node0"), a);
}

TEST(TraceWriter, ExportIsValidChromeTraceJson)
{
    TraceWriter tw;
    tw.setEnabled(true);
    const int t0 = tw.track("ltl.node0");
    const int t1 = tw.track("host.rank");
    // Simulated times in ps; exported ts/dur are microseconds.
    tw.complete(t0, "ltl", "ltl.node0.msg", 2'000'000, 500'000);
    tw.instant(t0, "ltl", "ltl.node0.retransmit", 2'250'000);
    tw.counter("host", "host.rank.in_flight", 3'000'000, 12.0);
    tw.complete(t1, "host", "host.rank.query", 0, 10'000'000);

    const JsonValue root = parseJsonOrDie(tw.json());
    ASSERT_EQ(root.kind, JsonValue::kObject);
    ASSERT_TRUE(root.has("traceEvents"));
    const auto &events = root.at("traceEvents").arr;
    ASSERT_EQ(events.size(), 4u);

    const JsonValue &span = events[0];
    EXPECT_EQ(span.at("ph").str, "X");
    EXPECT_EQ(span.at("cat").str, "ltl");
    EXPECT_EQ(span.at("name").str, "ltl.node0.msg");
    EXPECT_DOUBLE_EQ(span.at("ts").number, 2.0);
    EXPECT_DOUBLE_EQ(span.at("dur").number, 0.5);
    EXPECT_EQ(static_cast<int>(span.at("tid").number), t0);

    const JsonValue &inst = events[1];
    EXPECT_EQ(inst.at("ph").str, "i");
    EXPECT_DOUBLE_EQ(inst.at("ts").number, 2.25);

    const JsonValue &ctr = events[2];
    EXPECT_EQ(ctr.at("ph").str, "C");
    EXPECT_DOUBLE_EQ(ctr.at("args").at("value").number, 12.0);

    EXPECT_EQ(tw.categories(),
              (std::vector<std::string>{"host", "ltl"}));
}

// ---------------------------------------------------------------------------
// Periodic sampler.
// ---------------------------------------------------------------------------

TEST(Sampler, FollowsHandComputedSchedule)
{
    EventQueue eq;
    MetricsRegistry reg;
    double signal = 0.0;
    std::vector<sim::TimePs> tick_times;
    reg.registerProbe("test.signal", [&] {
        tick_times.push_back(0);  // size used as a call count below
        return signal;
    });

    const sim::TimePs period = 10 * sim::kMicrosecond;
    reg.startSampling(eq, period);
    EXPECT_TRUE(reg.samplingActive());

    // Signal becomes 100 at t=35us: ticks at 10,20,30 see 0; ticks at
    // 40..90 see 100.
    eq.scheduleAfter(35 * sim::kMicrosecond, [&signal] { signal = 100.0; });
    eq.runUntil(95 * sim::kMicrosecond);

    EXPECT_EQ(reg.samplesTaken(), 9u);  // ticks at 10,20,...,90 us
    EXPECT_EQ(tick_times.size(), 9u);

    // Time-weighted average over [10us, 90us): value 0 held 30us
    // (10->40), 100 held 50us (40->90) => 100*50/80 = 62.5.
    EXPECT_DOUBLE_EQ(reg.probeTimeAverage("test.signal"), 62.5);

    reg.stopSampling();
    EXPECT_FALSE(reg.samplingActive());
    eq.runAll();  // must terminate: the sampler no longer reschedules
    EXPECT_EQ(reg.samplesTaken(), 9u);
}

TEST(Sampler, EmitsTraceCountersOnFirstTickThenOnChange)
{
    EventQueue eq;
    Observability hub;
    hub.trace.setEnabled(true);
    double changing = 0.0;
    hub.registry.registerProbe("a.changing", [&] { return changing; });
    hub.registry.registerProbe("b.constant", [] { return 5.0; });

    hub.registry.startSampling(eq, 10 * sim::kMicrosecond, &hub.trace);
    eq.scheduleAfter(15 * sim::kMicrosecond, [&] { changing = 1.0; });
    eq.runUntil(45 * sim::kMicrosecond);  // ticks at 10,20,30,40
    hub.registry.stopSampling();

    // First tick: both probes emit. Later ticks: only a.changing, and
    // only once (at t=20) when its value actually changed.
    EXPECT_EQ(hub.trace.eventCount(), 3u);
    EXPECT_EQ(hub.trace.categories(),
              (std::vector<std::string>{"a", "b"}));
}

TEST(Sampler, RestartReplacesSchedule)
{
    EventQueue eq;
    MetricsRegistry reg;
    reg.registerProbe("x.v", [] { return 1.0; });
    reg.startSampling(eq, 10 * sim::kMicrosecond);
    reg.startSampling(eq, 25 * sim::kMicrosecond);  // replaces the first
    eq.runUntil(60 * sim::kMicrosecond);
    reg.stopSampling();
    EXPECT_EQ(reg.samplesTaken(), 2u);  // ticks at 25, 50
}

// ---------------------------------------------------------------------------
// End to end: an instrumented cloud produces a multi-component trace.
// ---------------------------------------------------------------------------

TEST(ObservabilityIntegration, SmallCloudTraceCoversAllComponentFamilies)
{
    EventQueue eq;  // declared before hub: queue must outlive sampler
    Observability hub;
    hub.trace.setEnabled(true);

    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    cfg.createNics = false;
    cfg.shellTemplate.ltl.maxConnections = 8;
    cfg.obs = &hub;
    core::ConfigurableCloud cloud(eq, cfg);

    struct NullRole : fpga::Role {
        int port = -1;
        std::string name() const override { return "null"; }
        std::uint32_t areaAlms() const override { return 100; }
        void attach(fpga::Shell &, int p) override { port = p; }
        void onMessage(const router::ErMessagePtr &) override {}
    } sink;
    cloud.shell(5).addRole(&sink);
    auto ch = cloud.openLtl(0, 5, sink.port);
    auto *engine = cloud.shell(0).ltlEngine();

    hub.registry.startSampling(eq, 50 * sim::kMicrosecond, &hub.trace);
    for (int i = 0; i < 20; ++i) {
        eq.scheduleAfter(i * 10 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 256);
                         });
    }
    eq.runFor(sim::fromMillis(1));
    hub.registry.stopSampling();

    // The acceptance bar for the trace: valid JSON, >= 4 component
    // families represented.
    const JsonValue root = parseJsonOrDie(hub.trace.json());
    EXPECT_GE(root.at("traceEvents").arr.size(), 4u);
    const auto cats = hub.trace.categories();
    EXPECT_GE(cats.size(), 4u);
    for (const char *want : {"fpga", "ltl", "router", "switch"})
        EXPECT_TRUE(std::find(cats.begin(), cats.end(), want) != cats.end())
            << "missing category " << want;

    // Registry agrees with the engine's own counters.
    EXPECT_EQ(hub.registry.probeValue("ltl.node0.frames_sent"),
              double(engine->framesSent()));
    const auto *rtt = hub.registry.findHistogram("ltl.node0.rtt_us");
    ASSERT_NE(rtt, nullptr);
    EXPECT_EQ(rtt->count(), engine->rttUs().count());

    // PR-3 kernel probes ride along on any observed cloud.
    for (const char *probe :
         {"sim.queue.events_per_sec", "sim.queue.live",
          "sim.queue.cancelled", "sim.queue.wheel_overflow"})
        EXPECT_TRUE(hub.registry.hasProbe(probe))
            << "missing kernel probe " << probe;
}

TEST(EventQueueProbes, ExportKernelHealthDeterministically)
{
    EventQueue eq;
    MetricsRegistry registry;
    obs::registerEventQueueProbes(registry, eq);

    EXPECT_EQ(registry.probeValue("sim.queue.live"), 0.0);
    EXPECT_EQ(registry.probeValue("sim.queue.events_per_sec"), 0.0);

    const auto doomed = eq.scheduleAfter(50, [] {});
    eq.scheduleAfter(100, [] {});
    EXPECT_EQ(registry.probeValue("sim.queue.live"), 2.0);
    eq.cancel(doomed);
    EXPECT_EQ(registry.probeValue("sim.queue.live"), 1.0);
    EXPECT_EQ(registry.probeValue("sim.queue.cancelled"), 1.0);

    eq.runAll();
    EXPECT_EQ(registry.probeValue("sim.queue.live"), 0.0);
    // The rate probe is defined over *simulated* time so same-seed runs
    // snapshot identically: 1 event in 100 ps = 1e10 events/sec.
    EXPECT_EQ(registry.probeValue("sim.queue.events_per_sec"), 1e10);
}

}  // namespace
