/**
 * @file
 * Host model tests: Poisson load generation, the diurnal trace, the
 * ranking-server queueing model (capacity, latency growth, accelerated
 * throughput gain), and the local FPGA accelerator pipeline.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using host::PoissonLoadGenerator;
using host::RankingServer;
using host::RankingServiceParams;
using sim::EventQueue;

TEST(PoissonLoad, RateIsApproximatelyCorrect)
{
    EventQueue eq;
    std::uint64_t arrivals = 0;
    PoissonLoadGenerator gen(eq, 1000.0, [&] { ++arrivals; }, 1);
    gen.start();
    eq.runUntil(10 * sim::kSecond);
    gen.stop();
    EXPECT_NEAR(static_cast<double>(arrivals), 10000.0, 300.0);
}

TEST(PoissonLoad, StopHaltsArrivals)
{
    EventQueue eq;
    std::uint64_t arrivals = 0;
    PoissonLoadGenerator gen(eq, 1000.0, [&] { ++arrivals; }, 2);
    gen.start();
    eq.runUntil(1 * sim::kSecond);
    gen.stop();
    const auto frozen = arrivals;
    eq.runUntil(5 * sim::kSecond);
    EXPECT_EQ(arrivals, frozen);
}

TEST(PoissonLoad, RateChangeTakesEffect)
{
    EventQueue eq;
    std::uint64_t arrivals = 0;
    PoissonLoadGenerator gen(eq, 100.0, [&] { ++arrivals; }, 3);
    gen.start();
    eq.runUntil(1 * sim::kSecond);
    const auto at_low = arrivals;
    gen.setRate(10000.0);
    eq.runUntil(2 * sim::kSecond);
    EXPECT_GT(arrivals - at_low, 50 * at_low / 10);
}

TEST(DiurnalTrace, ShapeAndBounds)
{
    host::DiurnalTraceParams p;
    const auto trace = host::makeDiurnalTrace(p);
    ASSERT_EQ(trace.size(),
              static_cast<std::size_t>(p.days * p.windowsPerDay));
    double lo = 1e9, hi = 0;
    for (double x : trace) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
        EXPECT_GT(x, 0.0);
    }
    // Clear diurnal swing: peak at least twice the trough.
    EXPECT_GT(hi / lo, 2.0);
    EXPECT_LT(hi, 1.6);  // bounded above nominal peak + drift + burst

    // Mid-day windows are heavier than midnight windows on average.
    double midnight = 0, midday = 0;
    for (int day = 0; day < p.days; ++day) {
        midnight += trace[day * p.windowsPerDay];
        midday += trace[day * p.windowsPerDay + p.windowsPerDay / 2];
    }
    EXPECT_GT(midday, 1.5 * midnight);
}

TEST(DiurnalTrace, Deterministic)
{
    host::DiurnalTraceParams p;
    EXPECT_EQ(host::makeDiurnalTrace(p), host::makeDiurnalTrace(p));
}

RankingServiceParams
testParams()
{
    RankingServiceParams p;  // defaults from DESIGN.md calibration
    return p;
}

double
runServer(double qps, host::FeatureAccelerator *accel, double duration_s,
          double *p99_out)
{
    EventQueue eq;
    RankingServer server(eq, testParams(), accel, 5);
    PoissonLoadGenerator gen(eq, qps, [&] { server.submitQuery(); }, 6);
    gen.start();
    eq.runUntil(sim::fromSeconds(duration_s));
    gen.stop();
    if (p99_out)
        *p99_out = server.latencyMs().percentile(99.0);
    return static_cast<double>(server.completed()) / duration_s;
}

TEST(RankingServer, SoftwareSaturatesNearCapacity)
{
    // Capacity = cores / mean service = 12 / 3.6 ms = ~3333 qps.
    double p99 = 0;
    const double tput = runServer(5000.0, nullptr, 20.0, &p99);
    EXPECT_NEAR(tput, 3333.0, 300.0);  // saturated
}

TEST(RankingServer, LatencyGrowsWithLoad)
{
    double p99_low = 0, p99_high = 0;
    runServer(1000.0, nullptr, 20.0, &p99_low);
    runServer(3100.0, nullptr, 20.0, &p99_high);
    EXPECT_GT(p99_high, 1.5 * p99_low);
}

TEST(RankingServer, FpgaLiftsThroughputMoreThanTwofold)
{
    EventQueue eq;
    host::LocalFpgaAccelerator accel(eq);
    RankingServer server(eq, testParams(), &accel, 5);
    PoissonLoadGenerator gen(eq, 12000.0, [&] { server.submitQuery(); }, 6);
    gen.start();
    eq.runUntil(sim::fromSeconds(20.0));
    gen.stop();
    const double tput = static_cast<double>(server.completed()) / 20.0;
    EXPECT_GT(tput, 2.0 * 3333.0);  // > 2x software capacity
}

TEST(RankingServer, FpgaUnderutilizedAtServerSaturation)
{
    // Paper: "the software portion of ranking saturates the host server
    // before the FPGA is saturated."
    EventQueue eq;
    host::LocalFpgaAccelerator accel(eq);
    RankingServer server(eq, testParams(), &accel, 5);
    PoissonLoadGenerator gen(eq, 20000.0, [&] { server.submitQuery(); }, 6);
    gen.start();
    eq.runUntil(sim::fromSeconds(10.0));
    gen.stop();
    EXPECT_LT(accel.utilization(eq.now()), 0.75);
}

TEST(RankingServer, LatencySamplesAreSojournTimes)
{
    EventQueue eq;
    RankingServer server(eq, testParams(), nullptr, 5);
    sim::TimePs done_latency = -1;
    server.submitQuery([&](sim::TimePs lat) { done_latency = lat; });
    eq.runAll();
    EXPECT_GT(done_latency, 0);
    EXPECT_EQ(server.completed(), 1u);
    EXPECT_NEAR(server.latencyMs().mean(), sim::toMillis(done_latency),
                1e-9);
    // An unloaded query takes roughly the mean service time (~3.6 ms).
    EXPECT_NEAR(sim::toMillis(done_latency), 3.6, 2.5);
}

TEST(LocalFpgaAccelerator, PipelinesRequests)
{
    EventQueue eq;
    host::LocalFpgaParams p;
    p.occupancyPerDoc = sim::fromNanos(350);
    p.fixedLatency = sim::fromMicros(90);
    host::LocalFpgaAccelerator accel(eq, p);
    sim::TimePs t1 = 0, t2 = 0;
    accel.compute(200, [&] { t1 = eq.now(); });
    accel.compute(200, [&] { t2 = eq.now(); });
    eq.runAll();
    // First completes at occupancy + latency; second one occupancy later.
    EXPECT_EQ(t1, 200 * p.occupancyPerDoc + p.fixedLatency);
    EXPECT_EQ(t2 - t1, 200 * p.occupancyPerDoc);
}

}  // namespace
