/**
 * @file
 * Property-based LTL suites: the protocol's core guarantee — exactly-
 * once, in-order delivery per connection — must hold across a matrix of
 * fault conditions (loss rate x NACK enablement x message size), window
 * sizes, bidirectional traffic, and connection churn.
 */
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <tuple>
#include <vector>

#include "ltl/ltl_engine.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace {

using namespace ccsim;
using ltl::LtlConfig;
using ltl::LtlEngine;
using ltl::LtlMessage;
using sim::EventQueue;

/** Two engines over a lossy/reordering pipe (A->B data faults only). */
struct FaultyPair {
    EventQueue eq;
    std::unique_ptr<LtlEngine> a, b;
    sim::TimePs oneWay = sim::fromNanos(900);
    double lossProb = 0.0;
    double dupProb = 0.0;
    double reorderProb = 0.0;
    sim::Rng rng{4242};
    net::PacketPtr held;  ///< one-deep reorder buffer
    std::vector<LtlMessage> delivered;

    explicit FaultyPair(LtlConfig base = LtlConfig{})
    {
        LtlConfig ca = base;
        ca.localIp = {1};
        LtlConfig cb = base;
        cb.localIp = {2};
        a = std::make_unique<LtlEngine>(
            eq, ca, [this](const net::PacketPtr &p) { fault(p); });
        b = std::make_unique<LtlEngine>(
            eq, cb, [this](const net::PacketPtr &p) {
                eq.scheduleAfter(oneWay,
                                 [this, p] { a->onNetworkPacket(p); });
            });
        b->setDeliveryHandler(
            [this](const LtlMessage &m) { delivered.push_back(m); });
    }

    void deliver(const net::PacketPtr &p)
    {
        eq.scheduleAfter(oneWay, [this, p] { b->onNetworkPacket(p); });
    }

    void fault(const net::PacketPtr &p)
    {
        auto hdr = std::static_pointer_cast<ltl::LtlHeader>(p->meta);
        const bool data = hdr && (hdr->flags & ltl::kFlagData);
        if (!data) {
            deliver(p);
            return;
        }
        if (rng.bernoulli(lossProb))
            return;
        if (rng.bernoulli(reorderProb)) {
            if (held) {
                // Swap: release the held one after this one.
                deliver(p);
                deliver(held);
                held = nullptr;
            } else {
                held = p;
            }
            return;
        }
        deliver(p);
        if (held) {
            deliver(held);
            held = nullptr;
        }
        if (rng.bernoulli(dupProb))
            eq.scheduleAfter(oneWay + 50, [this, p] {
                b->onNetworkPacket(p);
            });
    }

    std::uint16_t connect()
    {
        return a->openSend({2}, b->openReceive(0));
    }
};

// ---------------------------------------------------------------------
// Matrix: loss x NACK x message size.
// ---------------------------------------------------------------------

class LtlFaultMatrix
    : public ::testing::TestWithParam<std::tuple<double, bool, int>>
{
};

TEST_P(LtlFaultMatrix, ExactlyOnceInOrder)
{
    auto [loss, nack, msg_bytes] = GetParam();
    LtlConfig cfg;
    cfg.enableNack = nack;
    FaultyPair pair(cfg);
    pair.lossProb = loss;
    pair.dupProb = loss / 2;
    pair.reorderProb = loss / 2;
    const auto conn = pair.connect();

    const int kMessages = 150;
    for (int i = 0; i < kMessages; ++i) {
        pair.eq.scheduleAfter(i * 3 * sim::kMicrosecond,
                              [&pair, conn, i, msg_bytes] {
                                  pair.a->sendMessage(
                                      conn,
                                      static_cast<std::uint32_t>(msg_bytes),
                                      std::make_shared<int>(i));
                              });
    }
    pair.eq.runUntil(sim::fromSeconds(2.0));
    ASSERT_EQ(pair.delivered.size(), static_cast<std::size_t>(kMessages))
        << "loss=" << loss << " nack=" << nack << " size=" << msg_bytes;
    for (int i = 0; i < kMessages; ++i) {
        EXPECT_EQ(
            *std::static_pointer_cast<int>(pair.delivered[i].payload), i);
        EXPECT_EQ(pair.delivered[i].bytes,
                  static_cast<std::uint32_t>(msg_bytes));
    }
}

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, LtlFaultMatrix,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.05, 0.15),
                       ::testing::Bool(),
                       ::testing::Values(64, 1408, 5000)));

// ---------------------------------------------------------------------
// Window sweep: tiny windows still deliver everything, just slower.
// ---------------------------------------------------------------------

class LtlWindowSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(LtlWindowSweep, DeliversAllWithAnyWindow)
{
    LtlConfig cfg;
    cfg.sendWindowFrames = static_cast<std::uint32_t>(GetParam());
    FaultyPair pair(cfg);
    const auto conn = pair.connect();
    for (int i = 0; i < 60; ++i)
        pair.a->sendMessage(conn, 1408, std::make_shared<int>(i));
    pair.eq.runUntil(sim::fromSeconds(1.0));
    ASSERT_EQ(pair.delivered.size(), 60u);
    for (int i = 0; i < 60; ++i)
        EXPECT_EQ(
            *std::static_pointer_cast<int>(pair.delivered[i].payload), i);
}

INSTANTIATE_TEST_SUITE_P(Windows, LtlWindowSweep,
                         ::testing::Values(1, 2, 4, 16, 128));

// ---------------------------------------------------------------------
// Bidirectional traffic on one engine pair.
// ---------------------------------------------------------------------

TEST(LtlBidirectional, IndependentDirectionsDontInterfere)
{
    FaultyPair pair;
    pair.lossProb = 0.02;
    const auto a_to_b = pair.connect();
    // Reverse direction: B sends to A.
    std::vector<LtlMessage> to_a;
    pair.a->setDeliveryHandler(
        [&to_a](const LtlMessage &m) { to_a.push_back(m); });
    const auto b_to_a = pair.b->openSend({1}, pair.a->openReceive(0));

    for (int i = 0; i < 100; ++i) {
        pair.eq.scheduleAfter(i * 2 * sim::kMicrosecond, [&, i] {
            pair.a->sendMessage(a_to_b, 256, std::make_shared<int>(i));
            pair.b->sendMessage(b_to_a, 512, std::make_shared<int>(1000 + i));
        });
    }
    pair.eq.runUntil(sim::fromSeconds(1.0));
    ASSERT_EQ(pair.delivered.size(), 100u);
    ASSERT_EQ(to_a.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(
            *std::static_pointer_cast<int>(pair.delivered[i].payload), i);
        EXPECT_EQ(*std::static_pointer_cast<int>(to_a[i].payload),
                  1000 + i);
    }
}

// ---------------------------------------------------------------------
// Connection table lifecycle.
// ---------------------------------------------------------------------

TEST(LtlConnections, TableSlotsAreReusedAfterClose)
{
    LtlConfig cfg;
    cfg.maxConnections = 4;
    FaultyPair pair(cfg);
    std::vector<std::uint16_t> conns;
    for (int i = 0; i < 4; ++i)
        conns.push_back(pair.a->openSend({2}, 0));
    // Table full now; close one and reopen.
    pair.a->closeSend(conns[2]);
    const auto reused = pair.a->openSend({2}, 0);
    EXPECT_EQ(reused, conns[2]);
}

TEST(LtlConnections, MultipleStreamsToOneReceiverStayIsolated)
{
    FaultyPair pair;
    pair.lossProb = 0.03;
    // Two independent connections A->B, distinct receive targets.
    const auto rx1 = pair.b->openReceive(0);
    const auto rx2 = pair.b->openReceive(1);
    const auto tx1 = pair.a->openSend({2}, rx1);
    const auto tx2 = pair.a->openSend({2}, rx2);

    for (int i = 0; i < 80; ++i) {
        pair.eq.scheduleAfter(i * 2 * sim::kMicrosecond, [&, i] {
            pair.a->sendMessage(tx1, 128, std::make_shared<int>(i));
            pair.a->sendMessage(tx2, 128, std::make_shared<int>(10000 + i));
        });
    }
    pair.eq.runUntil(sim::fromSeconds(1.0));
    ASSERT_EQ(pair.delivered.size(), 160u);
    // Per-connection order: filter by conn and check monotone payloads.
    int expect1 = 0, expect2 = 10000;
    for (const auto &m : pair.delivered) {
        const int v = *std::static_pointer_cast<int>(m.payload);
        if (m.conn == rx1)
            EXPECT_EQ(v, expect1++);
        else
            EXPECT_EQ(v, expect2++);
    }
    EXPECT_EQ(expect1, 80);
    EXPECT_EQ(expect2, 10080);
}

// ---------------------------------------------------------------------
// Frame accounting: every frame ever sent is eventually acked,
// abandoned, or still in flight — at any instant, under any fault mix.
// The books are read through the observability registry, the same way
// an external monitor would.
// ---------------------------------------------------------------------

class LtlAccountingSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(LtlAccountingSweep, FrameAccountingBalancesUnderLoss)
{
    const double loss = GetParam();
    obs::Observability hub;
    FaultyPair pair;
    pair.lossProb = loss;
    pair.dupProb = loss / 2;
    pair.reorderProb = loss / 2;
    pair.a->attachObservability(&hub, "A");
    const auto conn = pair.connect();

    auto balance = [&hub, loss](const char *when) {
        const double sent = hub.registry.probeValue("ltl.A.frames_sent");
        const double acked = hub.registry.probeValue("ltl.A.frames_acked");
        const double abandoned =
            hub.registry.probeValue("ltl.A.frames_abandoned");
        const double in_flight =
            hub.registry.probeValue("ltl.A.frames_in_flight");
        EXPECT_EQ(sent, acked + abandoned + in_flight)
            << when << " (loss=" << loss << "): sent=" << sent
            << " acked=" << acked << " abandoned=" << abandoned
            << " in_flight=" << in_flight;
    };

    const int kMessages = 120;
    for (int i = 0; i < kMessages; ++i) {
        pair.eq.scheduleAfter(i * 3 * sim::kMicrosecond,
                              [&pair, conn] {
                                  pair.a->sendMessage(conn, 1408);
                              });
    }
    // The invariant holds at arbitrary instants mid-run, with frames
    // genuinely in flight — not only at quiescence.
    for (const int us : {40, 100, 250, 500})
        pair.eq.scheduleAfter(us * sim::kMicrosecond,
                              [&balance] { balance("mid-run"); });
    pair.eq.runUntil(sim::fromSeconds(2.0));

    balance("after drain");
    EXPECT_EQ(hub.registry.probeValue("ltl.A.frames_in_flight"), 0.0);
    EXPECT_EQ(hub.registry.probeValue("ltl.A.frames_sent"),
              double(pair.a->framesSent()));

    // Closing the connection writes off anything unacked; the books
    // must still balance afterwards.
    pair.a->closeSend(conn);
    balance("after close");
}

INSTANTIATE_TEST_SUITE_P(LossSweep, LtlAccountingSweep,
                         ::testing::Values(0.0, 0.02, 0.08, 0.2));

// ---------------------------------------------------------------------
// Pacing accuracy of the bandwidth limiter.
// ---------------------------------------------------------------------

class LtlRateSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(LtlRateSweep, AchievedRateTracksLimit)
{
    const double limit_gbps = GetParam();
    LtlConfig cfg;
    cfg.bandwidthLimitGbps = limit_gbps;
    cfg.enableDcqcn = false;
    cfg.sendWindowFrames = 4096;
    cfg.unackedStoreBytes = 64 * 1024 * 1024;
    FaultyPair pair(cfg);
    const auto conn = pair.connect();
    const int kMessages = 300;
    for (int i = 0; i < kMessages; ++i)
        pair.a->sendMessage(conn, 1408);
    pair.eq.runAll();
    const double total_bits = kMessages * (1408.0 + 32 + 46) * 8;
    const double seconds = sim::toSeconds(pair.eq.now());
    const double achieved = total_bits / seconds / 1e9;
    // Completion time includes the final RTT; allow generous bounds.
    EXPECT_GT(achieved, limit_gbps * 0.6);
    EXPECT_LT(achieved, limit_gbps * 1.15);
}

INSTANTIATE_TEST_SUITE_P(Rates, LtlRateSweep,
                         ::testing::Values(0.5, 2.0, 10.0, 40.0));

}  // namespace
