/**
 * @file
 * Flow tracing and tail-latency attribution: the timeline-sweep
 * decomposition's exactness invariant, FlightRecorder sampling and
 * worst-N exemplar policy, trace-context survival across LTL
 * retransmission (NACK and timeout), attribution consistency under load
 * with faults armed, same-seed span-dump determinism, TraceWriter flush
 * on abnormal termination, and the metric-name catalogue cross-check.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "fault/fault.hpp"
#include "host/ranking_server.hpp"
#include "ltl/ltl_engine.hpp"
#include "obs/flow_trace.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace {

using namespace ccsim;
using obs::Component;
using obs::FlightRecorder;
using obs::FlowTrace;
using obs::Span;
using obs::TraceContext;
using sim::EventQueue;

FlowTrace
makeFlow(sim::TimePs start, sim::TimePs end,
         std::vector<Span> spans = {})
{
    FlowTrace t;
    t.traceId = 1;
    t.flow = "test.flow";
    t.start = start;
    t.end = end;
    t.spans = std::move(spans);
    return t;
}

Span
makeSpan(std::uint32_t id, Component c, sim::TimePs start, sim::TimePs end,
         std::string hop)
{
    Span s;
    s.id = id;
    s.comp = c;
    s.start = start;
    s.end = end;
    s.hop = std::move(hop);
    return s;
}

// ---------------------------------------------------------------------
// Attribution sweep: exactness, priority, clipping.
// ---------------------------------------------------------------------

TEST(Attribution, UncoveredTimeFallsToQueueingAndSumsExactly)
{
    const auto t = makeFlow(
        0, 100, {makeSpan(1, Component::kCompute, 10, 30, "a")});
    const auto a = obs::attributeLatency(t);
    EXPECT_EQ(a.total, 100);
    EXPECT_EQ(a.of(Component::kCompute), 20);
    EXPECT_EQ(a.of(Component::kQueueing), 80);
    EXPECT_TRUE(a.consistent());
}

TEST(Attribution, EmptyFlowIsAllQueueing)
{
    const auto a = obs::attributeLatency(makeFlow(50, 150));
    EXPECT_EQ(a.of(Component::kQueueing), 100);
    EXPECT_TRUE(a.consistent());
}

TEST(Attribution, HigherPriorityComponentWinsOverlap)
{
    // A retransmit window laid over an explicit queueing span: the
    // overlap must count as retransmit, never inflate queueing.
    const auto t = makeFlow(
        0, 100, {makeSpan(1, Component::kQueueing, 0, 100, "q"),
                 makeSpan(2, Component::kRetransmit, 20, 60, "rtx")});
    const auto a = obs::attributeLatency(t);
    EXPECT_EQ(a.of(Component::kRetransmit), 40);
    EXPECT_EQ(a.of(Component::kQueueing), 60);
    EXPECT_TRUE(a.consistent());
}

TEST(Attribution, SamePriorityTieGoesToLowestSpanId)
{
    const auto t = makeFlow(
        0, 150, {makeSpan(1, Component::kCompute, 0, 100, "a"),
                 makeSpan(2, Component::kCompute, 50, 150, "b")});
    const auto rows = obs::attributeByHop(t);
    ASSERT_EQ(rows.size(), 2u);
    sim::TimePs a_total = 0, b_total = 0;
    for (const auto &r : rows) {
        if (r.hop == "a")
            a_total = r.total();
        if (r.hop == "b")
            b_total = r.total();
    }
    EXPECT_EQ(a_total, 100);  // wins the [50,100) tie by lower id
    EXPECT_EQ(b_total, 50);
}

TEST(Attribution, SpansClippedToFlowWindow)
{
    const auto t = makeFlow(
        100, 200,
        {makeSpan(1, Component::kSerialization, 50, 150, "wire"),
         makeSpan(2, Component::kPropagation, 180, 400, "cable")});
    const auto a = obs::attributeLatency(t);
    EXPECT_EQ(a.of(Component::kSerialization), 50);  // [100,150)
    EXPECT_EQ(a.of(Component::kPropagation), 20);    // [180,200)
    EXPECT_EQ(a.of(Component::kQueueing), 30);       // [150,180)
    EXPECT_TRUE(a.consistent());
}

TEST(Attribution, ByHopRowsSumToTotalWithUnattributedRow)
{
    const auto t = makeFlow(
        0, 100, {makeSpan(1, Component::kCompute, 0, 40, "stage")});
    const auto rows = obs::attributeByHop(t);
    ASSERT_EQ(rows.size(), 2u);
    sim::TimePs sum = 0;
    bool unattributed = false;
    for (const auto &r : rows) {
        sum += r.total();
        unattributed |= r.hop == "(unattributed)";
    }
    EXPECT_EQ(sum, t.latency());
    EXPECT_TRUE(unattributed);
}

TEST(Attribution, FormatTableShowsHopsAndTotalRow)
{
    const auto t = makeFlow(
        0, 2000000,
        {makeSpan(1, Component::kCompute, 0, 1000000, "ltl.node0.tx")});
    const std::string table = obs::formatAttributionTable(t);
    EXPECT_NE(table.find("ltl.node0.tx"), std::string::npos);
    EXPECT_NE(table.find("(total)"), std::string::npos);
    EXPECT_EQ(table.find("INCONSISTENT"), std::string::npos);
}

// ---------------------------------------------------------------------
// FlightRecorder: sampling, exemplar policy, drop accounting.
// ---------------------------------------------------------------------

TEST(FlightRecorder, DisabledRecorderReturnsUnsampledContexts)
{
    FlightRecorder fr;
    const auto ctx = fr.beginFlow("f", 0);
    EXPECT_FALSE(ctx.sampled);
    EXPECT_EQ(ctx.traceId, 0u);
    EXPECT_EQ(fr.flowsStarted(), 0u);
}

TEST(FlightRecorder, SamplesOneFlowInN)
{
    FlightRecorder fr;
    fr.setEnabled(true);
    fr.setSampleEvery(3);
    int sampled = 0;
    for (int i = 0; i < 9; ++i)
        sampled += fr.beginFlow("f", i).sampled ? 1 : 0;
    EXPECT_EQ(sampled, 3);  // flows 1, 4, 7 (the first is always taken)
    EXPECT_EQ(fr.flowsStarted(), 9u);
    EXPECT_EQ(fr.flowsSampled(), 3u);
}

TEST(FlightRecorder, KeepsWorstNByLatency)
{
    FlightRecorder fr;
    fr.setEnabled(true);
    fr.setTailCapacity(2);
    for (sim::TimePs lat : {10, 30, 20}) {
        const auto ctx = fr.beginFlow("f", 0);
        fr.recordSpan(ctx, "hop", Component::kCompute, 0, lat);
        fr.endFlow(ctx, lat);
    }
    const auto worst = fr.worstFirst();
    ASSERT_EQ(worst.size(), 2u);
    EXPECT_EQ(worst[0]->latency(), 30);
    EXPECT_EQ(worst[1]->latency(), 20);
    // The evicted 10 ps flow carried one span.
    EXPECT_EQ(fr.droppedSpans(), 1u);
}

TEST(FlightRecorder, LateAndOverflowSpansCountedAsDropped)
{
    FlightRecorder fr;
    fr.setEnabled(true);
    fr.setMaxSpansPerTrace(2);
    const auto ctx = fr.beginFlow("f", 0);
    fr.recordSpan(ctx, "a", Component::kCompute, 0, 1);
    fr.recordSpan(ctx, "b", Component::kCompute, 1, 2);
    fr.recordSpan(ctx, "c", Component::kCompute, 2, 3);  // over the cap
    EXPECT_EQ(fr.droppedSpans(), 1u);
    fr.endFlow(ctx, 3);
    fr.recordSpan(ctx, "d", Component::kCompute, 3, 4);  // flow is gone
    EXPECT_EQ(fr.droppedSpans(), 2u);
    ASSERT_EQ(fr.exemplars().size(), 1u);
    EXPECT_EQ(fr.exemplars()[0].spans.size(), 2u);
    EXPECT_EQ(fr.exemplars()[0].droppedSpans, 1u);
}

TEST(FlightRecorder, OpenCloseSpanRoundTrip)
{
    FlightRecorder fr;
    fr.setEnabled(true);
    const auto ctx = fr.beginFlow("f", 0);
    const auto id = fr.openSpan(ctx, "stage", Component::kPfcPause, 5);
    ASSERT_NE(id, 0u);
    fr.closeSpan(ctx, id, 25);
    fr.endFlow(ctx, 30);
    ASSERT_EQ(fr.exemplars().size(), 1u);
    const auto &s = fr.exemplars()[0].spans.at(0);
    EXPECT_EQ(s.start, 5);
    EXPECT_EQ(s.end, 25);
    EXPECT_EQ(s.comp, Component::kPfcPause);
}

TEST(FlightRecorder, BindMetricsFoldsPreBindCounts)
{
    FlightRecorder fr;
    fr.setEnabled(true);
    const auto ctx = fr.beginFlow("f", 0);
    fr.endFlow(ctx, 1);

    obs::MetricsRegistry reg;
    fr.bindMetrics(reg);
    const auto *sampled = reg.findCounter("trace.sampled_flows");
    ASSERT_NE(sampled, nullptr);
    EXPECT_EQ(sampled->get(), 1u);

    fr.endFlow(fr.beginFlow("f", 2), 3);
    EXPECT_EQ(sampled->get(), 2u);
}

TEST(FlightRecorder, NewWindowDiscardsExemplarsWithoutCountingDrops)
{
    FlightRecorder fr;
    fr.setEnabled(true);
    const auto ctx = fr.beginFlow("f", 0);
    fr.recordSpan(ctx, "hop", Component::kCompute, 0, 1);
    fr.endFlow(ctx, 1);
    ASSERT_EQ(fr.exemplars().size(), 1u);
    fr.newWindow();
    EXPECT_TRUE(fr.exemplars().empty());
    EXPECT_EQ(fr.droppedSpans(), 0u);  // an intentional reset, not loss
}

// ---------------------------------------------------------------------
// TraceWriter: flush on abnormal termination, Chrome flow events.
// ---------------------------------------------------------------------

TEST(TraceWriterFlush, DestructorWritesBufferedEvents)
{
    const std::string path = "test_flow_trace_flush.json";
    std::remove(path.c_str());
    {
        obs::TraceWriter tw;
        tw.setEnabled(true);
        tw.autoFlushOnExit(path);
        tw.instant(0, "test", "orphaned-event", 123);
        // No explicit writeFile: the destructor must salvage the buffer
        // (the same path covers std::exit via the atexit hook).
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("orphaned-event"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceWriterFlush, ExplicitWriteClearsDirtyFlag)
{
    const std::string path = "test_flow_trace_clean.json";
    obs::TraceWriter tw;
    tw.setEnabled(true);
    tw.instant(0, "test", "e", 1);
    EXPECT_TRUE(tw.dirty());
    ASSERT_TRUE(tw.writeFile(path));
    EXPECT_FALSE(tw.dirty());
    std::remove(path.c_str());
}

TEST(TraceWriter, FlowEventsCarryIdAndBindingPoint)
{
    const std::string path = "test_flow_trace_flow_events.json";
    obs::TraceWriter tw;
    tw.setEnabled(true);
    tw.flowPoint('s', 0, "flow", "f", 10, 7);
    tw.flowPoint('f', 0, "flow", "f", 20, 7);
    ASSERT_TRUE(tw.writeFile(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("\"id\":7"), std::string::npos);
    EXPECT_NE(ss.str().find("\"bp\":\"e\""), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// LTL: trace context survives retransmission (satellite test).
// ---------------------------------------------------------------------

/** Two engines joined by a droppable pipe (as in test_ltl.cpp). */
struct TracedPair {
    EventQueue eq;
    obs::Observability hub;
    std::unique_ptr<ltl::LtlEngine> a;
    std::unique_ptr<ltl::LtlEngine> b;
    sim::TimePs oneWay = sim::fromNanos(800);
    std::function<bool(const net::PacketPtr &)> dropIf;
    std::vector<ltl::LtlMessage> delivered;

    explicit TracedPair(ltl::LtlConfig base = ltl::LtlConfig{})
    {
        hub.flows.setEnabled(true);
        hub.flows.setSampleEvery(1);
        ltl::LtlConfig ca = base;
        ca.localIp = {1};
        ltl::LtlConfig cb = base;
        cb.localIp = {2};
        a = std::make_unique<ltl::LtlEngine>(
            eq, ca, [this](const net::PacketPtr &p) {
                auto hdr = std::static_pointer_cast<ltl::LtlHeader>(p->meta);
                const bool is_data = hdr && (hdr->flags & ltl::kFlagData);
                if (is_data && dropIf && dropIf(p))
                    return;
                eq.scheduleAfter(oneWay,
                                 [this, p] { b->onNetworkPacket(p); });
            });
        b = std::make_unique<ltl::LtlEngine>(
            eq, cb, [this](const net::PacketPtr &p) {
                eq.scheduleAfter(oneWay,
                                 [this, p] { a->onNetworkPacket(p); });
            });
        a->attachObservability(&hub, "a");
        b->setDeliveryHandler(
            [this](const ltl::LtlMessage &m) { delivered.push_back(m); });
    }

    std::uint16_t connect()
    {
        const std::uint16_t rx = b->openReceive(0);
        return a->openSend({2}, rx);
    }
};

TEST(FlowTraceLtl, NackRetransmitKeepsTraceIdAndCountsAsRetransmit)
{
    TracedPair pair;
    const auto conn = pair.connect();
    int data_frames = 0;
    pair.dropIf = [&](const net::PacketPtr &) {
        return ++data_frames == 3;  // drop message 3's only frame
    };
    for (int i = 0; i < 10; ++i)
        pair.a->sendMessage(conn, 64, std::make_shared<int>(i));
    pair.eq.runUntil(sim::fromMicros(2000));
    ASSERT_EQ(pair.delivered.size(), 10u);
    ASSERT_GT(pair.b->nacksSent(), 0u);
    ASSERT_EQ(pair.a->timeouts(), 0u);  // NACK recovery, not timeout

    // The retransmitted copy must carry the original flow's trace id:
    // the id the receiver observed for message 3 names an exemplar that
    // contains the retransmit span.
    const std::uint64_t retx_id = pair.delivered[2].trace.traceId;
    ASSERT_NE(retx_id, 0u);
    const FlowTrace *retx_flow = nullptr;
    const FlowTrace *clean_flow = nullptr;
    for (const auto &t : pair.hub.flows.exemplars()) {
        if (t.traceId == retx_id)
            retx_flow = &t;
        // Go-back-N resends everything at and after the loss, so only
        // messages acked before the drop are clean; message 1 is.
        if (t.traceId == pair.delivered[0].trace.traceId)
            clean_flow = &t;
    }
    ASSERT_NE(retx_flow, nullptr);
    ASSERT_NE(clean_flow, nullptr);

    bool has_retx_span = false;
    for (const auto &s : retx_flow->spans)
        has_retx_span |= s.comp == Component::kRetransmit;
    EXPECT_TRUE(has_retx_span);

    const auto attr = obs::attributeLatency(*retx_flow);
    const auto clean = obs::attributeLatency(*clean_flow);
    EXPECT_TRUE(attr.consistent());
    EXPECT_TRUE(clean.consistent());
    EXPECT_GT(attr.of(Component::kRetransmit), 0);
    EXPECT_EQ(clean.of(Component::kRetransmit), 0);
    // The loss-detection wait is attributed to retransmit, so the
    // affected flow's queueing share stays at a clean flow's level (one
    // extra flight of uncovered wire time at most).
    EXPECT_LE(attr.of(Component::kQueueing),
              clean.of(Component::kQueueing) + sim::fromMicros(5));
}

TEST(FlowTraceLtl, TimeoutRetransmitAttributedToRetransmit)
{
    ltl::LtlConfig cfg;
    cfg.enableNack = false;
    TracedPair pair(cfg);
    const auto conn = pair.connect();
    int data_frames = 0;
    pair.dropIf = [&](const net::PacketPtr &) {
        return ++data_frames == 1;
    };
    pair.a->sendMessage(conn, 64, std::make_shared<int>(7));
    pair.eq.runUntil(sim::fromMicros(500));
    ASSERT_EQ(pair.delivered.size(), 1u);
    ASSERT_GE(pair.a->timeouts(), 1u);

    ASSERT_EQ(pair.hub.flows.exemplars().size(), 1u);
    const auto &flow = pair.hub.flows.exemplars()[0];
    EXPECT_EQ(flow.traceId, pair.delivered[0].trace.traceId);
    const auto attr = obs::attributeLatency(flow);
    EXPECT_TRUE(attr.consistent());
    // The timeout wait dominates this flow's latency and must land in
    // the retransmit component, not queueing.
    EXPECT_GT(attr.of(Component::kRetransmit),
              attr.of(Component::kQueueing));
}

// ---------------------------------------------------------------------
// Cloud-level property, determinism, and catalogue cross-check.
// ---------------------------------------------------------------------

struct CloudRole : fpga::Role {
    int port = -1;
    std::string name() const override { return "sink"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &) override {}
};

core::CloudConfig
tracedCloudConfig(obs::Observability *hub)
{
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    cfg.createNics = false;
    cfg.shellTemplate.ltl.maxConnections = 16;
    cfg.obs = hub;
    cfg.withFlowTracing(/*sample_every=*/1, /*tail_capacity=*/128);
    return cfg;
}

/**
 * Drive a small cloud under load with a scripted link flap armed, check
 * the attribution invariant on every exemplar, and return the span dump.
 */
std::string
runFaultyCloudScenario()
{
    EventQueue eq;
    obs::Observability hub;
    core::ConfigurableCloud cloud(eq, tracedCloudConfig(&hub));
    CloudRole sink;
    EXPECT_GE(cloud.shell(5).addRole(&sink), 0);
    auto ch = cloud.openLtl(0, 5, sink.port);

    // Cut the sender's TOR cable mid-train: retransmission and recovery
    // happen while spans are recording.
    fault::FaultInjector inj(eq, cloud,
                             fault::FaultConfig{}.withHostLinkFlap(
                                 sim::fromMicros(500), 0,
                                 sim::fromMicros(200)));
    inj.arm();

    auto *engine = cloud.shell(0).ltlEngine();
    for (int i = 0; i < 100; ++i) {
        eq.scheduleAfter(i * 20 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 1408);
                         });
    }
    eq.runUntil(sim::fromMicros(10000));

    EXPECT_GT(cloud.shell(0).ltlEngine()->framesRetransmitted(), 0u);
    EXPECT_FALSE(hub.flows.exemplars().empty());
    bool saw_retransmit = false;
    for (const auto &t : hub.flows.exemplars()) {
        const auto attr = obs::attributeLatency(t);
        EXPECT_TRUE(attr.consistent())
            << "trace " << t.traceId << ": components sum to "
            << attr.sum() << " ps, total " << attr.total << " ps";
        saw_retransmit |= attr.of(Component::kRetransmit) > 0;
    }
    EXPECT_TRUE(saw_retransmit);
    return hub.flows.spanDumpJson();
}

TEST(FlowTraceProperty, AttributionConsistentUnderLoadWithFaultsArmed)
{
    runFaultyCloudScenario();
}

TEST(FlowTraceDeterminism, SameSeedRunsProduceIdenticalSpanDumps)
{
    const std::string first = runFaultyCloudScenario();
    const std::string second = runFaultyCloudScenario();
    EXPECT_EQ(first, second);
}

TEST(MetricNames, EveryRegisteredPathMatchesADocumentedPattern)
{
    EventQueue eq;
    obs::Observability hub;
    core::CloudConfig cfg = tracedCloudConfig(&hub);
    cfg.createNics = true;  // cover nic.* too
    core::ConfigurableCloud cloud(eq, cfg);
    fault::FaultInjector inj(eq, cloud,
                             fault::FaultConfig{}.withHostLinkFlap(
                                 sim::fromMicros(100), 0,
                                 sim::fromMicros(50)));
    inj.arm();
    host::RankingServer server(eq, host::RankingServiceParams{}, nullptr);
    server.attachObservability(&hub, "rank");

    const auto paths = hub.registry.paths();
    ASSERT_GT(paths.size(), 50u);
    for (const auto &p : paths) {
        EXPECT_NE(obs::findMetricPattern(p), nullptr)
            << "metric path '" << p
            << "' is not documented in src/obs/metric_names.hpp";
    }
}

TEST(MetricNames, GlobSemantics)
{
    EXPECT_TRUE(obs::matchesMetricPattern("ltl.*.rtt_us",
                                          "ltl.node12.rtt_us"));
    EXPECT_TRUE(obs::matchesMetricPattern("switch.*.q*.depth",
                                          "switch.tor.0.1.q3.depth"));
    EXPECT_FALSE(obs::matchesMetricPattern("ltl.*.rtt_us", "ltl.rtt_us"));
    EXPECT_FALSE(obs::matchesMetricPattern("fault.node*.down",
                                           "fault.node3.downtime_us"));
    EXPECT_FALSE(obs::matchesMetricPattern("a.b", "a.bc"));
    EXPECT_TRUE(obs::matchesMetricPattern("a.b", "a.b"));
}

}  // namespace
