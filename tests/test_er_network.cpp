/**
 * @file
 * Multi-router composition tests (ring and 2-D mesh), exercising the
 * credit-respecting inter-router links and the generated routing tables.
 */
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "router/er_network.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace {

using namespace ccsim;
using router::ErMessagePtr;
using router::ErNetwork;
using sim::EventQueue;

TEST(ErRing, AllPairsDeliver)
{
    EventQueue eq;
    auto net = ErNetwork::ring(eq, 4, 2);
    ASSERT_EQ(net->numEndpoints(), 8);

    std::map<int, int> received;
    for (int e = 0; e < net->numEndpoints(); ++e) {
        net->endpoint(e).setMessageHandler(
            [&received, e](const ErMessagePtr &) { ++received[e]; });
    }
    for (int src = 0; src < 8; ++src) {
        for (int dst = 0; dst < 8; ++dst) {
            if (src != dst)
                net->endpoint(src).sendMessage(dst, 0, 128);
        }
    }
    eq.runAll();
    for (int e = 0; e < 8; ++e)
        EXPECT_EQ(received[e], 7) << "endpoint " << e;
    EXPECT_EQ(net->linkBacklog(), 0u);
}

TEST(ErRing, ShortestDirectionLatency)
{
    EventQueue eq;
    auto net = ErNetwork::ring(eq, 8, 1);
    // Neighbor hop (0 -> 1) must be much faster than the diameter hop
    // (0 -> 4, four routers away either direction).
    sim::TimePs t_near = 0, t_far = 0;
    net->endpoint(1).setMessageHandler(
        [&](const ErMessagePtr &) { t_near = eq.now(); });
    net->endpoint(4).setMessageHandler(
        [&](const ErMessagePtr &) { t_far = eq.now(); });
    net->endpoint(0).sendMessage(1, 0, 32);
    eq.runAll();
    const sim::TimePs start_far = eq.now();
    net->endpoint(0).sendMessage(4, 0, 32);
    eq.runAll();
    EXPECT_GT(t_far - start_far, t_near);
    EXPECT_LT(t_far - start_far, 4 * t_near + sim::fromMicros(1));
}

TEST(ErRing, OrderPreservedPerVcUnderLoad)
{
    EventQueue eq;
    auto net = ErNetwork::ring(eq, 3, 1);
    std::vector<int> got;
    net->endpoint(2).setMessageHandler([&](const ErMessagePtr &m) {
        got.push_back(*std::static_pointer_cast<int>(m->payload));
    });
    for (int i = 0; i < 40; ++i)
        net->endpoint(0).sendMessage(2, 0, 256, std::make_shared<int>(i));
    eq.runAll();
    ASSERT_EQ(got.size(), 40u);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(got[i], i);
}

class MeshShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MeshShapes, RandomTrafficAllDelivered)
{
    auto [w, h, epr] = GetParam();
    EventQueue eq;
    auto net = ErNetwork::mesh(eq, w, h, epr);
    ASSERT_EQ(net->numEndpoints(), w * h * epr);

    std::map<int, int> received, expected;
    for (int e = 0; e < net->numEndpoints(); ++e) {
        net->endpoint(e).setMessageHandler(
            [&received, e](const ErMessagePtr &) { ++received[e]; });
    }
    sim::Rng rng(321);
    for (int i = 0; i < 150; ++i) {
        const int src = static_cast<int>(
            rng.uniformInt(std::uint64_t(net->numEndpoints())));
        const int dst = static_cast<int>(
            rng.uniformInt(std::uint64_t(net->numEndpoints())));
        if (src == dst)
            continue;
        const int vc = static_cast<int>(rng.uniformInt(std::uint64_t{2}));
        net->endpoint(src).sendMessage(
            dst, vc,
            static_cast<std::uint32_t>(32 + rng.uniformInt(
                                                std::uint64_t{480})));
        ++expected[dst];
    }
    eq.runAll();
    for (const auto &[dst, count] : expected)
        EXPECT_EQ(received[dst], count) << "endpoint " << dst;
    EXPECT_EQ(net->linkBacklog(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshShapes,
                         ::testing::Values(std::tuple{2, 2, 1},
                                           std::tuple{3, 3, 2},
                                           std::tuple{4, 2, 2},
                                           std::tuple{1, 4, 1}));

TEST(ErMesh, DimensionOrderPathLatencyScalesWithDistance)
{
    EventQueue eq;
    auto net = ErNetwork::mesh(eq, 4, 4, 1);
    auto time_to = [&](int dst) {
        sim::TimePs t = -1;
        net->endpoint(dst).setMessageHandler(
            [&t, &eq](const ErMessagePtr &) { t = eq.now(); });
        const sim::TimePs start = eq.now();
        net->endpoint(0).sendMessage(dst, 0, 32);
        eq.runAll();
        return t - start;
    };
    const auto one_hop = time_to(1);    // (1,0)
    const auto far = time_to(15);       // (3,3): 6 hops
    EXPECT_GT(far, 3 * one_hop);
}

TEST(ErMesh, HotspotBackpressuresWithoutLoss)
{
    EventQueue eq;
    router::ErConfig base;
    base.perVcReservedFlits = 2;
    base.sharedPoolFlits = 6;  // tight buffers: links must back-pressure
    auto net = ErNetwork::mesh(eq, 3, 1, 1, base);
    int received = 0;
    net->endpoint(2).setMessageHandler(
        [&](const ErMessagePtr &) { ++received; });
    // Both other routers blast the rightmost endpoint.
    for (int i = 0; i < 30; ++i) {
        net->endpoint(0).sendMessage(2, 0, 1024);
        net->endpoint(1).sendMessage(2, 0, 1024);
    }
    eq.runAll();
    EXPECT_EQ(received, 60);
    EXPECT_EQ(net->linkBacklog(), 0u);
}

}  // namespace
