/**
 * @file
 * FPGA layer tests: area model (Figure 5 numbers), board/flash/power,
 * bridge passthrough + tap + injection + reconfiguration downtime, PCIe
 * and DRAM models, shell composition, SEU scrubbing, deployment
 * reliability Monte Carlo (Section II-B).
 */
#include <gtest/gtest.h>

#include "fpga/area_model.hpp"
#include "fpga/board.hpp"
#include "fpga/bridge.hpp"
#include "fpga/dram.hpp"
#include "fpga/pcie.hpp"
#include "fpga/power_virus.hpp"
#include "fpga/reliability.hpp"
#include "fpga/shell.hpp"
#include "net/channel.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using fpga::AreaModel;
using fpga::Bridge;
using fpga::Direction;
using sim::EventQueue;

TEST(AreaModel, ProductionImageMatchesFigure5)
{
    const AreaModel m = AreaModel::productionImage();
    EXPECT_EQ(m.totalAvailable(), 172600u);
    EXPECT_EQ(m.totalUsed(), 131350u);
    EXPECT_NEAR(m.utilizationPercent(), 76.0, 0.2);
    // Shell = 44% of the FPGA; role = 32%.
    EXPECT_NEAR(100.0 * m.shellUsed() / m.totalAvailable(), 44.0, 0.2);
    EXPECT_NEAR(100.0 * m.roleUsed() / m.totalAvailable(), 32.0, 0.1);
    // Spot-check headline components: MACs 14% total, DDR3 8%, LTL 7%,
    // ER 2%.
    std::uint32_t macs = 0, ddr = 0, ltl = 0, er = 0;
    for (const auto &c : m.components()) {
        if (c.name.find("MAC/PHY") != std::string::npos)
            macs += c.alms;
        if (c.name.find("DDR3") != std::string::npos)
            ddr += c.alms;
        if (c.name == "LTL Protocol Engine")
            ltl += c.alms;
        if (c.name == "Elastic Router")
            er += c.alms;
    }
    EXPECT_NEAR(m.percentOf(macs), 14.0, 0.8);
    EXPECT_NEAR(m.percentOf(ddr), 8.0, 0.4);
    EXPECT_NEAR(m.percentOf(ltl), 7.0, 0.4);
    EXPECT_NEAR(m.percentOf(er), 2.0, 0.3);
}

TEST(AreaModel, RejectsOversizedComponent)
{
    AreaModel m(1000);
    EXPECT_TRUE(m.addComponent({"a", 600, 100.0, true}));
    EXPECT_FALSE(m.addComponent({"b", 500, 100.0, false}));
    EXPECT_EQ(m.totalUsed(), 600u);
    EXPECT_TRUE(m.addComponent({"c", 400, 100.0, false}));
    m.clearRoles();
    EXPECT_EQ(m.totalUsed(), 600u);
}

TEST(Board, PowerOnLoadsGoldenImage)
{
    fpga::FpgaBoard board;
    board.powerOn();
    ASSERT_TRUE(board.loadedImage().has_value());
    EXPECT_TRUE(board.runningGolden());
    board.flashApplicationImage({"app", false, 50000, false});
    EXPECT_TRUE(board.loadApplicationImage());
    EXPECT_FALSE(board.runningGolden());
    // Power-cycle via the management path restores the golden image.
    board.powerCycle();
    EXPECT_TRUE(board.runningGolden());
}

TEST(Board, PowerEnvelopeRespected)
{
    fpga::FpgaBoard board;
    EXPECT_LE(board.estimatePowerWatts(1.0), board.spec().tdpWatts);
    EXPECT_LE(board.estimatePowerWatts(1.0),
              board.spec().maxElectricalWatts);
    EXPECT_NEAR(board.estimatePowerWatts(1.0), 29.2, 0.01);
    EXPECT_LT(board.estimatePowerWatts(0.0), board.estimatePowerWatts(1.0));
}

struct BridgeHarness {
    EventQueue eq;
    Bridge bridge{eq, fpga::BridgeConfig{}};
    net::Channel torTx{eq, "tor", 40.0, 0, 1 << 20};
    net::Channel nicTx{eq, "nic", 40.0, 0, 1 << 20};

    struct Sink : net::PacketSink {
        std::vector<net::PacketPtr> pkts;
        void acceptPacket(const net::PacketPtr &p) override
        {
            pkts.push_back(p);
        }
    } torSide, nicSide;

    BridgeHarness()
    {
        bridge.setTorTx(&torTx);
        bridge.setNicTx(&nicTx);
        torTx.setSink(&torSide);
        nicTx.setSink(&nicSide);
    }

    net::PacketPtr packet()
    {
        auto p = net::makePacket();
        p->ipSrc = {1};
        p->ipDst = {2};
        p->payloadBytes = 100;
        return p;
    }
};

TEST(Bridge, PassesBothDirections)
{
    BridgeHarness h;
    h.bridge.nicSideSink()->acceptPacket(h.packet());
    h.bridge.torSideSink()->acceptPacket(h.packet());
    h.eq.runAll();
    EXPECT_EQ(h.torSide.pkts.size(), 1u);
    EXPECT_EQ(h.nicSide.pkts.size(), 1u);
    EXPECT_EQ(h.bridge.forwardedNicToTor(), 1u);
    EXPECT_EQ(h.bridge.forwardedTorToNic(), 1u);
}

TEST(Bridge, TraverseLatencyApplied)
{
    BridgeHarness h;
    h.bridge.nicSideSink()->acceptPacket(h.packet());
    sim::TimePs arrival = -1;
    h.eq.runAll();
    arrival = h.eq.now();
    // traverse latency (120 ns) + serialization of the 100 B payload.
    EXPECT_GE(arrival, 120 * sim::kNanosecond);
}

TEST(Bridge, TapConsumesAndInjects)
{
    BridgeHarness h;
    h.bridge.setTap([](Direction d, const net::PacketPtr &p) {
        if (d == Direction::kFromTor && p->dstPort == 0xBEEF)
            return fpga::TapResult{fpga::TapResult::Action::kConsume, 0};
        return fpga::TapResult{};
    });
    auto ltl_pkt = h.packet();
    ltl_pkt->dstPort = 0xBEEF;
    h.bridge.torSideSink()->acceptPacket(ltl_pkt);
    h.bridge.torSideSink()->acceptPacket(h.packet());
    h.eq.runAll();
    EXPECT_EQ(h.nicSide.pkts.size(), 1u);  // only the non-LTL packet
    EXPECT_EQ(h.bridge.consumedByTap(), 1u);

    h.bridge.injectToTor(h.packet());
    h.eq.runAll();
    EXPECT_EQ(h.torSide.pkts.size(), 1u);
    EXPECT_EQ(h.bridge.injected(), 1u);
}

TEST(Bridge, TapExtraDelayDelaysForwarding)
{
    BridgeHarness h;
    const sim::TimePs kCryptoDelay = 11 * sim::kMicrosecond;
    h.bridge.setTap([&](Direction, const net::PacketPtr &) {
        return fpga::TapResult{fpga::TapResult::Action::kForward,
                               kCryptoDelay};
    });
    h.bridge.nicSideSink()->acceptPacket(h.packet());
    h.eq.runAll();
    EXPECT_GE(h.eq.now(), kCryptoDelay);
    EXPECT_EQ(h.torSide.pkts.size(), 1u);
}

TEST(Bridge, DropsWhileDown)
{
    BridgeHarness h;
    h.bridge.setDown(true);
    h.bridge.nicSideSink()->acceptPacket(h.packet());
    h.bridge.injectToTor(h.packet());
    h.eq.runAll();
    EXPECT_TRUE(h.torSide.pkts.empty());
    EXPECT_EQ(h.bridge.droppedWhileDown(), 2u);
    h.bridge.setDown(false);
    h.bridge.nicSideSink()->acceptPacket(h.packet());
    h.eq.runAll();
    EXPECT_EQ(h.torSide.pkts.size(), 1u);
}

TEST(Pcie, BandwidthAndLatencyModel)
{
    EventQueue eq;
    fpga::PcieDma pcie(eq, fpga::PcieConfig{16.0, 900 * sim::kNanosecond});
    sim::TimePs done1 = 0, done2 = 0;
    pcie.hostToFpga(16000, [&] { done1 = eq.now(); });   // 1 us at 16 GB/s
    pcie.hostToFpga(16000, [&] { done2 = eq.now(); });
    eq.runAll();
    EXPECT_EQ(done1, sim::fromNanos(1000) + 900 * sim::kNanosecond);
    // Serialized behind the first transfer.
    EXPECT_EQ(done2, sim::fromNanos(2000) + 900 * sim::kNanosecond);
}

TEST(Pcie, DirectionsIndependent)
{
    EventQueue eq;
    fpga::PcieDma pcie(eq);
    sim::TimePs up = 0, down = 0;
    pcie.hostToFpga(16000, [&] { down = eq.now(); });
    pcie.fpgaToHost(16000, [&] { up = eq.now(); });
    eq.runAll();
    EXPECT_EQ(up, down);  // no cross-direction serialization
}

TEST(Dram, SerializesAtSustainedBandwidth)
{
    EventQueue eq;
    fpga::DramChannel dram(eq);
    sim::TimePs t1 = 0, t2 = 0;
    dram.read(9600, [&] { t1 = eq.now(); });   // 1 us at 9.6 GB/s
    dram.write(9600, [&] { t2 = eq.now(); });
    eq.runAll();
    EXPECT_EQ(t1, sim::fromNanos(1000) + 150 * sim::kNanosecond);
    EXPECT_EQ(t2, sim::fromNanos(2000) + 150 * sim::kNanosecond);
    EXPECT_EQ(dram.reads(), 1u);
    EXPECT_EQ(dram.writes(), 1u);
}

fpga::ShellConfig
testShellConfig(const std::string &name, net::Ipv4Addr ip)
{
    fpga::ShellConfig cfg;
    cfg.name = name;
    cfg.ip = ip;
    cfg.ltl.maxConnections = 16;
    return cfg;
}

TEST(Shell, AreaAccountsShellAndRoles)
{
    EventQueue eq;
    fpga::Shell shell(eq, testShellConfig("s0", {10}));
    EXPECT_NEAR(100.0 * shell.areaModel().shellUsed() /
                    shell.areaModel().totalAvailable(),
                44.0, 0.5);

    struct BigRole : fpga::Role {
        std::string name() const override { return "big"; }
        std::uint32_t areaAlms() const override { return 200000; }
        void attach(fpga::Shell &, int) override {}
        void onMessage(const router::ErMessagePtr &) override {}
    } big;
    EXPECT_EQ(shell.addRole(&big), -1);  // does not fit

    struct SmallRole : fpga::Role {
        std::string name() const override { return "small"; }
        std::uint32_t areaAlms() const override { return 10000; }
        void attach(fpga::Shell &, int) override {}
        void onMessage(const router::ErMessagePtr &) override {}
    } small;
    EXPECT_EQ(shell.addRole(&small), fpga::kErPortRole0);
}

TEST(Shell, NoLtlShellFreesArea)
{
    EventQueue eq;
    auto cfg = testShellConfig("s0", {10});
    cfg.enableLtl = false;
    fpga::Shell shell(eq, cfg);
    EXPECT_EQ(shell.ltlEngine(), nullptr);
    // LTL engine (7%) + LTL packet switch (3%) freed.
    EXPECT_NEAR(100.0 * shell.areaModel().shellUsed() /
                    shell.areaModel().totalAvailable(),
                44.0 - 10.0, 0.8);
}

TEST(Shell, HostToRoleRoundTripOverPcieAndEr)
{
    EventQueue eq;
    fpga::Shell shell(eq, testShellConfig("s0", {10}));

    struct EchoRole : fpga::Role {
        fpga::Shell *shell = nullptr;
        int port = -1;
        int received = 0;
        std::string name() const override { return "echo"; }
        std::uint32_t areaAlms() const override { return 1000; }
        void attach(fpga::Shell &s, int p) override
        {
            shell = &s;
            port = p;
        }
        void onMessage(const router::ErMessagePtr &msg) override
        {
            ++received;
            shell->roleEndpoint(port).sendMessage(
                fpga::kErPortPcie, fpga::kVcResponse, msg->sizeBytes,
                msg->payload);
        }
    } echo;
    const int port = shell.addRole(&echo);
    ASSERT_GE(port, 0);

    int replies = 0;
    sim::TimePs reply_time = 0;
    shell.setHostRxHandler(
        [&](int role_port, const router::ErMessagePtr &msg) {
            EXPECT_EQ(role_port, port);
            EXPECT_EQ(*std::static_pointer_cast<int>(msg->payload), 123);
            ++replies;
            reply_time = eq.now();
        });
    shell.sendFromHost(port, 4096, std::make_shared<int>(123));
    eq.runAll();
    EXPECT_EQ(echo.received, 1);
    EXPECT_EQ(replies, 1);
    // Round trip includes two PCIe DMA latencies (>= 1.8 us).
    EXPECT_GE(reply_time, sim::fromNanos(1800));
}

TEST(Shell, DramRequestsServedViaEr)
{
    EventQueue eq;
    fpga::Shell shell(eq, testShellConfig("s0", {10}));

    struct DramUser : fpga::Role {
        fpga::Shell *shell = nullptr;
        int port = -1;
        int replies = 0;
        std::string name() const override { return "dram-user"; }
        std::uint32_t areaAlms() const override { return 1000; }
        void attach(fpga::Shell &s, int p) override
        {
            shell = &s;
            port = p;
        }
        void onMessage(const router::ErMessagePtr &msg) override
        {
            auto reply =
                std::static_pointer_cast<fpga::DramReply>(msg->payload);
            if (reply && reply->cookie == 7)
                ++replies;
        }
    } user;
    const int port = shell.addRole(&user);

    auto req = std::make_shared<fpga::DramRequest>();
    req->bytes = 4096;
    req->isWrite = false;
    req->replyPort = port;
    req->cookie = 7;
    shell.roleEndpoint(port).sendMessage(fpga::kErPortDram,
                                         fpga::kVcRequest, 64, req);
    eq.runAll();
    EXPECT_EQ(user.replies, 1);
    EXPECT_EQ(shell.dram().reads(), 1u);
}

TEST(Shell, FullReconfigurationDownsBridge)
{
    EventQueue eq;
    fpga::Shell shell(eq, testShellConfig("s0", {10}));
    bool done = false;
    shell.reconfigureFull([&] { done = true; });
    EXPECT_TRUE(shell.bridge().down());
    eq.runUntil(1 * sim::kSecond);
    EXPECT_FALSE(done);
    eq.runUntil(3 * sim::kSecond);
    EXPECT_TRUE(done);
    EXPECT_FALSE(shell.bridge().down());
}

TEST(Shell, PartialReconfigurationKeepsBridgeUp)
{
    EventQueue eq;
    fpga::Shell shell(eq, testShellConfig("s0", {10}));
    struct NopRole : fpga::Role {
        std::string name() const override { return "nop"; }
        std::uint32_t areaAlms() const override { return 100; }
        void attach(fpga::Shell &, int) override {}
        void onMessage(const router::ErMessagePtr &) override {}
    } role;
    const int port = shell.addRole(&role);
    bool done = false;
    shell.reconfigureRolePartial(port, [&] { done = true; });
    EXPECT_FALSE(shell.bridge().down());
    // Messages to the role are dropped during reconfiguration.
    shell.sendFromHost(port, 64, std::make_shared<int>(1));
    eq.runUntil(100 * sim::kMillisecond);
    EXPECT_EQ(shell.messagesToInactiveRole(), 1u);
    eq.runUntil(1 * sim::kSecond);
    EXPECT_TRUE(done);
}

TEST(Shell, ScrubbingDetectsSeusAndRecoversHangs)
{
    EventQueue eq;
    fpga::Shell shell(eq, testShellConfig("s0", {10}));
    shell.startScrubbing(30 * sim::kSecond);
    shell.injectSeu(false);
    shell.injectSeu(false);
    shell.injectSeu(true);  // this one hangs the role
    eq.runUntil(31 * sim::kSecond);
    EXPECT_EQ(shell.seusDetected(), 3u);  // hang-causing SEU still counted
    EXPECT_EQ(shell.roleHangsRecovered(), 1u);
}

TEST(PowerVirus, BurnInPassesWithinEnvelope)
{
    EventQueue eq;
    fpga::Shell shell(eq, testShellConfig("s0", {10}));
    fpga::PowerVirus virus(eq);
    fpga::BurnInReport report;
    bool done = false;
    virus.run(shell, 5 * sim::kMillisecond, fpga::BurnInConditions{},
              [&](const fpga::BurnInReport &r) {
                  report = r;
                  done = true;
              });
    eq.runAll();
    ASSERT_TRUE(done);
    // The virus keeps the serialized datapaths near saturation (the
    // reported DRAM number excludes the ER storm's competing reads).
    EXPECT_GT(report.dramUtilization, 0.70);
    EXPECT_GT(report.pcieUtilization, 0.45);  // h2f saturated, f2h echoes
    EXPECT_GT(report.erUtilization, 0.0);
    // Paper: 29.2 W, within the 32 W TDP and 35 W electrical limit.
    EXPECT_NEAR(report.powerWatts, 29.2, 0.01);
    EXPECT_TRUE(report.passed());
}

TEST(PowerVirus, FailsWhenThermalConditionsExceedSpec)
{
    EventQueue eq;
    fpga::Shell shell(eq, testShellConfig("s0", {10}));
    fpga::PowerVirus virus(eq);
    fpga::BurnInConditions hot;
    hot.ambientTempC = 85.0;  // above the 70 C qualification point
    bool passed = true;
    virus.run(shell, 1 * sim::kMillisecond, hot,
              [&](const fpga::BurnInReport &r) { passed = r.passed(); });
    eq.runAll();
    EXPECT_FALSE(passed);
}

TEST(Reliability, DeploymentCountsNearPaper)
{
    fpga::DeploymentConfig cfg;  // 5,760 servers, 30 days
    const auto report = fpga::simulateDeployment(cfg);
    EXPECT_EQ(report.machineDays, 5760u * 30u);
    // Expected ~168.6 SEUs (one per 1025 machine-days); allow 3 sigma.
    EXPECT_NEAR(static_cast<double>(report.seuEvents), 168.6, 40.0);
    EXPECT_NEAR(report.machineDaysPerSeu(), 1025.0, 250.0);
    // Hard failures ~2, bring-up failures ~5 (PCIe) and ~8 (DRAM).
    EXPECT_LE(report.hardFailures, 8u);
    EXPECT_LE(report.pcieTrainingFailures, 15u);
    EXPECT_GE(report.pcieTrainingFailures, 1u);
    EXPECT_LE(report.dramCalibFailures, 20u);
    EXPECT_GE(report.dramCalibFailures, 2u);
}

TEST(Reliability, ScalesWithDeploymentSize)
{
    fpga::DeploymentConfig small;
    small.servers = 576;
    const auto small_report = fpga::simulateDeployment(small);
    fpga::DeploymentConfig big;
    big.servers = 57600;
    const auto big_report = fpga::simulateDeployment(big);
    EXPECT_LT(small_report.seuEvents * 10, big_report.seuEvents * 2);
}

}  // namespace
