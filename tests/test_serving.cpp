/**
 * @file
 * Cluster serving layer tests: balancer policies (round-robin parity,
 * least-outstanding determinism, bounded-load consistent hashing),
 * token-bucket admission (deterministic shedding, tenant isolation),
 * outlier ejection (consecutive errors, latency percentile, the
 * max-ejected-fraction guard), the ClusterClient facade end-to-end with
 * a RankingServer, config validation, and same-seed snapshot identity
 * per balancer policy.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "host/feature_accelerator.hpp"
#include "host/ranking_server.hpp"
#include "obs/flow_trace.hpp"
#include "obs/metrics.hpp"
#include "serving/admission.hpp"
#include "serving/balancer.hpp"
#include "serving/cluster_client.hpp"
#include "serving/outlier.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using serving::AdmissionConfig;
using serving::AdmissionController;
using serving::BalancerPolicy;
using serving::ClusterClient;
using serving::EjectionConfig;
using serving::OutlierDetector;
using serving::ServingConfig;
using sim::EventQueue;

/** Fixed-latency accelerator endpoint standing in for a remote FPGA. */
class StubAccelerator : public host::FeatureAccelerator
{
  public:
    StubAccelerator(EventQueue &eq, sim::TimePs latency)
        : queue(eq), serviceTime(latency)
    {
    }

    void compute(std::uint32_t, std::function<void()> done) override
    {
        ++requests;
        if (dead)
            return;  // swallow: the request never completes
        queue.scheduleAfter(serviceTime, [d = std::move(done)] {
            if (d)
                d();
        });
    }

    void setLatency(sim::TimePs latency) { serviceTime = latency; }
    void setDead(bool d) { dead = d; }

    EventQueue &queue;
    sim::TimePs serviceTime;
    bool dead = false;
    int requests = 0;
};

// ---------------------------------------------------------------------
// Balancers
// ---------------------------------------------------------------------

TEST(Balancer, RoundRobinCyclesAndSurvivesMembershipChanges)
{
    auto lb = serving::makeBalancer(BalancerPolicy::kRoundRobin);
    lb->setHosts({4, 7, 9});
    // Legacy semantics: free-running counter, index = counter % size.
    EXPECT_EQ(lb->pick(0, {}), 4);
    EXPECT_EQ(lb->pick(0, {}), 7);
    EXPECT_EQ(lb->pick(0, {}), 9);
    EXPECT_EQ(lb->pick(0, {}), 4);
    // Counter is at 4; with 2 hosts the next pick is index 4 % 2 = 0.
    lb->setHosts({4, 7});
    EXPECT_EQ(lb->pick(0, {}), 4);
    EXPECT_EQ(lb->pick(0, {}), 7);
    lb->setHosts({});
    EXPECT_EQ(lb->pick(0, {}), -1);
}

TEST(Balancer, LeastOutstandingPicksFewestWithFirstSeenTieBreak)
{
    auto lb = serving::makeBalancer(BalancerPolicy::kLeastOutstanding);
    lb->setHosts({3, 1, 5});
    std::map<int, int> load{{3, 2}, {1, 1}, {5, 1}};
    auto out = [&](int h) { return load[h]; };
    // 1 and 5 tie at one outstanding; the first seen in set order wins.
    EXPECT_EQ(lb->pick(0, out), 1);
    load[1] = 3;
    EXPECT_EQ(lb->pick(0, out), 5);
    load[5] = 4;
    EXPECT_EQ(lb->pick(0, out), 3);
    // No outstanding function at all: first host wins (all count 0).
    EXPECT_EQ(lb->pick(0, {}), 3);
}

TEST(Balancer, ConsistentHashGivesStableAffinity)
{
    auto lb = serving::makeBalancer(
        BalancerPolicy::kBoundedLoadConsistentHash, 64, 8.0);
    lb->setHosts({0, 1, 2, 3});
    // With a generous load bound and no outstanding load, a key's pick
    // is its ring home — identical on every call.
    for (std::uint64_t key = 1; key <= 200; ++key) {
        const int first = lb->pick(key, {});
        EXPECT_EQ(lb->pick(key, {}), first) << "key " << key;
        EXPECT_GE(first, 0);
    }
}

TEST(Balancer, ConsistentHashMovesFewKeysOnMembershipChange)
{
    auto lb = serving::makeBalancer(
        BalancerPolicy::kBoundedLoadConsistentHash, 64, 8.0);
    lb->setHosts({0, 1, 2, 3});
    std::map<std::uint64_t, int> before;
    for (std::uint64_t key = 1; key <= 500; ++key)
        before[key] = lb->pick(key, {});
    lb->setHosts({0, 1, 2, 3, 4});
    int moved = 0, movedElsewhere = 0;
    for (std::uint64_t key = 1; key <= 500; ++key) {
        const int now = lb->pick(key, {});
        if (now != before[key]) {
            ++moved;
            if (now != 4)
                ++movedElsewhere;  // should only move TO the new host
        }
    }
    // Consistent hashing moves ~1/n of the keys, all toward the new
    // host; a modulo hash would reshuffle ~4/5 of them.
    EXPECT_GT(moved, 0);
    EXPECT_LT(moved, 250);  // well under half; expectation ~100
    EXPECT_EQ(movedElsewhere, 0);
}

TEST(Balancer, ConsistentHashRespectsBoundedLoad)
{
    auto lb = serving::makeBalancer(
        BalancerPolicy::kBoundedLoadConsistentHash, 64, 1.25);
    lb->setHosts({0, 1, 2});
    // Find a key homed on some host, then saturate that host: the same
    // key must spill to a different host instead of queueing behind it.
    const std::uint64_t key = 42;
    const int home = lb->pick(key, {});
    std::map<int, int> load;
    // cap = ceil(1.25 * (total + 1) / 3); total = 9 -> cap = ceil(4.16)
    // = 5. Put 6 on the home host, 2 and 1 on the others.
    int other = -1;
    for (int h : {0, 1, 2})
        if (h != home && other < 0)
            other = h;
    load[home] = 6;
    load[other] = 2;
    load[3 - home - other] = 1;
    auto out = [&](int h) { return load[h]; };
    const int spilled = lb->pick(key, out);
    EXPECT_NE(spilled, home);
    EXPECT_GE(spilled, 0);
}

TEST(Balancer, FactoryNames)
{
    EXPECT_STREQ(serving::makeBalancer(BalancerPolicy::kRoundRobin)->name(),
                 "round_robin");
    EXPECT_STREQ(
        serving::makeBalancer(BalancerPolicy::kLeastOutstanding)->name(),
        "least_outstanding");
    EXPECT_STREQ(
        serving::makeBalancer(BalancerPolicy::kBoundedLoadConsistentHash)
            ->name(),
        "bounded_load_ch");
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(Admission, UnlimitedByDefault)
{
    EventQueue eq;
    AdmissionController ac(eq, {});
    EXPECT_TRUE(ac.unlimited());
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(ac.tryAdmit());
    EXPECT_EQ(ac.shed(), 0u);
}

TEST(Admission, ShedsDeterministicallyUnderFixedArrivalTrace)
{
    // 1000 req/s = one token per millisecond; burst of 2. Submit 3
    // back-to-back, then one every 0.7 ms: the admit/shed pattern is a
    // pure function of the arrival timeline. (0.7 ms keeps every
    // token-count comparison at least 0.1 tokens away from the
    // admission threshold, far outside float rounding.)
    auto run = [&] {
        EventQueue eq;
        AdmissionController ac(
            eq, AdmissionConfig{}.withRate(1000.0, 2.0));
        std::vector<int> decisions;
        auto submit = [&] { decisions.push_back(ac.tryAdmit() ? 1 : 0); };
        submit();  // t=0: burst token 1
        submit();  // t=0: burst token 2
        submit();  // t=0: empty -> shed
        for (int i = 1; i <= 9; ++i) {
            eq.scheduleAfter(i * 700 * sim::kMicrosecond, submit);
        }
        eq.runAll();
        return decisions;
    };
    const std::vector<int> first = run();
    // Token level at each arrival (refill 0.7/arrival, take on admit):
    // 0.7 shed, 1.4 admit, 1.1 admit, 0.8 shed, 1.5 admit, 1.2 admit,
    // 0.9 shed, 1.6 admit, 1.3 admit.
    const std::vector<int> expected = {1, 1, 0, 0, 1, 1, 0, 1, 1, 0, 1, 1};
    EXPECT_EQ(first, expected);
    EXPECT_EQ(run(), first);  // same trace, same decisions, every run
}

TEST(Admission, TenantBucketsIsolateAndChargeTheBindingConstraint)
{
    EventQueue eq;
    AdmissionController ac(
        eq, AdmissionConfig{}
                .withRate(1'000'000.0, 100.0)  // global: effectively open
                .withTenant("noisy", 1000.0, 1.0)
                .withTenant("quiet", 1000.0, 5.0));
    // The noisy tenant exhausts its own bucket; the quiet tenant and
    // untagged traffic are untouched.
    EXPECT_TRUE(ac.tryAdmit("noisy"));
    EXPECT_FALSE(ac.tryAdmit("noisy"));
    EXPECT_FALSE(ac.tryAdmit("noisy"));
    EXPECT_TRUE(ac.tryAdmit("quiet"));
    EXPECT_TRUE(ac.tryAdmit());
    EXPECT_TRUE(ac.tryAdmit("unknown-tenant"));  // only the global gate
    EXPECT_EQ(ac.shedFor("noisy"), 2u);
    EXPECT_EQ(ac.shedFor("quiet"), 0u);
    EXPECT_EQ(ac.shed(), 2u);
    EXPECT_EQ(ac.admitted(), 4u);
}

TEST(Admission, ShedDoesNotConsumeTokens)
{
    EventQueue eq;
    AdmissionController ac(eq, AdmissionConfig{}
                                   .withRate(1000.0, 10.0)
                                   .withTenant("t", 1000.0, 1.0));
    // Tenant bucket refuses; the global bucket must not be debited.
    EXPECT_TRUE(ac.tryAdmit("t"));
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(ac.tryAdmit("t"));
    // 9 global tokens must remain for untagged traffic.
    for (int i = 0; i < 9; ++i)
        EXPECT_TRUE(ac.tryAdmit()) << "global token " << i << " missing";
    EXPECT_FALSE(ac.tryAdmit());
}

TEST(AdmissionDeathTest, InvalidConfigsAreFatal)
{
    EventQueue eq;
    EXPECT_DEATH(AdmissionController(
                     eq, AdmissionConfig{}.withRate(-1.0, 1.0)),
                 "ratePerSec");
    EXPECT_DEATH(AdmissionController(
                     eq, AdmissionConfig{}.withRate(10.0, 0.5)),
                 "burst");
    EXPECT_DEATH(AdmissionController(eq, AdmissionConfig{}
                                             .withTenant("a", 10.0, 1.0)
                                             .withTenant("a", 5.0, 1.0)),
                 "duplicate");
}

// ---------------------------------------------------------------------
// Outlier detection
// ---------------------------------------------------------------------

TEST(Outlier, ConsecutiveErrorsEjectTemporarily)
{
    EventQueue eq;
    EjectionConfig cfg;
    cfg.consecutiveErrors = 3;
    cfg.baseEjectionTime = 10 * sim::kMillisecond;
    OutlierDetector det(eq, cfg);
    det.trackHosts({0, 1});

    det.recordError(0);
    det.recordError(0);
    EXPECT_FALSE(det.ejected(0));
    det.recordSuccess(0, sim::kMillisecond);  // success resets the run
    det.recordError(0);
    det.recordError(0);
    EXPECT_FALSE(det.ejected(0));
    det.recordError(0);
    EXPECT_TRUE(det.ejected(0));
    EXPECT_FALSE(det.ejected(1));
    EXPECT_EQ(det.ejectionsByErrors(), 1u);

    // Ejection expires lazily at base ejection time.
    eq.scheduleAfter(cfg.baseEjectionTime + 1, [] {});
    eq.runAll();
    EXPECT_FALSE(det.ejected(0));
}

TEST(Outlier, RepeatEjectionDurationDoubles)
{
    EventQueue eq;
    EjectionConfig cfg;
    cfg.consecutiveErrors = 1;
    cfg.baseEjectionTime = 10 * sim::kMillisecond;
    cfg.maxEjectedFraction = 1.0;
    OutlierDetector det(eq, cfg);
    det.trackHosts({0, 1});

    det.recordError(0);
    EXPECT_TRUE(det.ejected(0));
    // After the first ejection expires, a second one lasts 2x.
    eq.scheduleAfter(10 * sim::kMillisecond + 1, [&] {
        EXPECT_FALSE(det.ejected(0));
        det.recordError(0);
        EXPECT_TRUE(det.ejected(0));
    });
    eq.scheduleAfter(25 * sim::kMillisecond, [&] {
        EXPECT_TRUE(det.ejected(0)) << "second ejection must last 20 ms";
    });
    eq.scheduleAfter(31 * sim::kMillisecond, [&] {
        EXPECT_FALSE(det.ejected(0));
    });
    eq.runAll();
    EXPECT_EQ(det.ejections(), 2u);
}

TEST(Outlier, LatencyPercentileEjectsGreyHost)
{
    EventQueue eq;
    EjectionConfig cfg;
    cfg.consecutiveErrors = 0;  // isolate the latency signal
    cfg.latencyFactor = 3.0;
    cfg.latencyPercentile = 50.0;
    cfg.minLatencySamples = 32;
    cfg.latencyWindow = 64;
    OutlierDetector det(eq, cfg);
    det.trackHosts({0, 1, 2});

    // Hosts 1 and 2 answer in 1 ms; host 0 answers but 20x slower — the
    // classic grey failure heartbeats cannot see.
    for (int i = 0; i < 64; ++i) {
        det.recordSuccess(1, sim::kMillisecond);
        det.recordSuccess(2, sim::kMillisecond);
        det.recordSuccess(0, 20 * sim::kMillisecond);
    }
    EXPECT_TRUE(det.ejected(0));
    EXPECT_FALSE(det.ejected(1));
    EXPECT_FALSE(det.ejected(2));
    EXPECT_EQ(det.ejectionsByLatency(), 1u);
    EXPECT_EQ(det.ejectionsByErrors(), 0u);
}

TEST(Outlier, MaxEjectedFractionNeverEmptiesThePool)
{
    EventQueue eq;
    EjectionConfig cfg;
    cfg.consecutiveErrors = 1;
    cfg.maxEjectedFraction = 0.5;
    OutlierDetector det(eq, cfg);
    det.trackHosts({0, 1, 2, 3});

    det.recordError(0);
    det.recordError(1);
    EXPECT_TRUE(det.ejected(0));
    EXPECT_TRUE(det.ejected(1));
    // Limit is floor(0.5 * 4) = 2: further ejections are suppressed.
    det.recordError(2);
    det.recordError(3);
    EXPECT_FALSE(det.ejected(2));
    EXPECT_FALSE(det.ejected(3));
    EXPECT_EQ(det.ejectionsSuppressed(), 2u);
    EXPECT_EQ(det.ejectedCount(), 2);
}

TEST(Outlier, EvidenceSinkFiresPerEjection)
{
    EventQueue eq;
    EjectionConfig cfg;
    cfg.consecutiveErrors = 1;
    cfg.evidenceWeight = 2.5;
    OutlierDetector det(eq, cfg);
    det.trackHosts({0, 1});
    std::vector<std::pair<int, double>> reports;
    det.setEvidenceSink([&](int host, double w) {
        reports.emplace_back(host, w);
    });
    det.recordError(1);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].first, 1);
    EXPECT_DOUBLE_EQ(reports[0].second, 2.5);
}

TEST(OutlierDeathTest, InvalidConfigsAreFatal)
{
    EventQueue eq;
    EjectionConfig bad_fraction;
    bad_fraction.maxEjectedFraction = 1.5;
    EXPECT_DEATH(OutlierDetector(eq, bad_fraction), "maxEjectedFraction");
    EjectionConfig bad_window;
    bad_window.latencyWindow = 4;
    bad_window.minLatencySamples = 8;
    EXPECT_DEATH(OutlierDetector(eq, bad_window), "latencyWindow");
}

// ---------------------------------------------------------------------
// ClusterClient
// ---------------------------------------------------------------------

struct Fleet {
    EventQueue eq;
    std::vector<int> instanceList;
    std::vector<std::unique_ptr<StubAccelerator>> accels;
    std::unique_ptr<ClusterClient> client;

    explicit Fleet(int n, ServingConfig cfg = {},
                   sim::TimePs latency = sim::kMillisecond)
    {
        for (int i = 0; i < n; ++i) {
            instanceList.push_back(i);
            accels.push_back(
                std::make_unique<StubAccelerator>(eq, latency));
        }
        client = std::make_unique<ClusterClient>(
            eq, "svc", [this] { return instanceList; }, cfg);
        for (int i = 0; i < n; ++i)
            client->registerEndpoint(i, accels[i].get());
    }
};

TEST(ClusterClient, RoutesAcrossPoolAndCountsOutstanding)
{
    ServingConfig cfg;
    cfg.balancer = BalancerPolicy::kRoundRobin;
    Fleet fleet(3, cfg);
    int completions = 0;
    for (int i = 0; i < 6; ++i)
        fleet.client->compute(100, [&] { ++completions; });
    EXPECT_EQ(fleet.client->outstandingTotal(), 6);
    // Round robin: two requests per backend.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(fleet.client->outstandingOn(i), 2);
    fleet.eq.runAll();
    EXPECT_EQ(completions, 6);
    EXPECT_EQ(fleet.client->outstandingTotal(), 0);
    EXPECT_EQ(fleet.client->routed(), 6u);
}

TEST(ClusterClient, LeastOutstandingNeverPicksEjectedInstance)
{
    ServingConfig cfg;
    cfg.balancer = BalancerPolicy::kLeastOutstanding;
    cfg.ejection.consecutiveErrors = 1;
    Fleet fleet(4, cfg);
    // Eject host 2 via the detector, then route many times with uneven
    // outstanding load: the pick must never be the ejected host, even
    // though its outstanding count (0) would normally win. (The first
    // route() seeds the detector's tracked set from the lease view.)
    fleet.client->route();
    fleet.client->outliers().recordError(2);
    ASSERT_TRUE(fleet.client->outliers().ejected(2));
    for (int i = 0; i < 64; ++i) {
        const int picked = fleet.client->route();
        ASSERT_NE(picked, 2) << "routed to an ejected instance";
        fleet.client->compute(10, {});
    }
}

TEST(ClusterClient, NoRoutableBackendDropsRequest)
{
    Fleet fleet(1);
    fleet.client->unregisterEndpoint(0);
    bool done_called = false;
    fleet.client->compute(10, [&] { done_called = true; });
    fleet.eq.runAll();
    EXPECT_FALSE(done_called);
    EXPECT_EQ(fleet.client->noBackend(), 1u);
    EXPECT_EQ(fleet.client->routed(), 0u);
}

TEST(ClusterClient, AttemptTimeoutFeedsErrorSignalAndEjects)
{
    ServingConfig cfg;
    cfg.ejection.consecutiveErrors = 2;
    cfg.ejection.attemptTimeout = 5 * sim::kMillisecond;
    Fleet fleet(2, cfg);
    // Host 0 dies silently (requests never complete); two timed-out
    // requests must eject it without any heartbeat machinery.
    fleet.accels[0]->setDead(true);
    // RR picks 0, 1, 0, 1: two requests land on the dead host.
    for (int i = 0; i < 4; ++i)
        fleet.client->compute(10, {});
    fleet.eq.runAll();
    EXPECT_TRUE(fleet.client->outliers().ejected(0));
    EXPECT_FALSE(fleet.client->outliers().ejected(1));
    EXPECT_EQ(fleet.client->outliers().errorsRecorded(), 2u);
    // Outstanding accounting survived the timeouts.
    EXPECT_EQ(fleet.client->outstandingTotal(), 0);
}

TEST(ClusterClient, AdmissionShedsAndCharges)
{
    ServingConfig cfg;
    cfg.admission.withRate(1000.0, 2.0).withTenant("bing", 1000.0, 1.0);
    Fleet fleet(2, cfg);
    EXPECT_TRUE(fleet.client->admit("bing"));
    EXPECT_FALSE(fleet.client->admit("bing"));  // tenant bucket empty
    EXPECT_TRUE(fleet.client->admit());         // global token remains
    EXPECT_FALSE(fleet.client->admit());        // global empty too
    EXPECT_EQ(fleet.client->admission().shed(), 2u);
    EXPECT_EQ(fleet.client->admission().shedFor("bing"), 1u);
}

TEST(ClusterClient, EndToEndWithRankingServerShedsAndServes)
{
    ServingConfig cfg;
    cfg.admission.withRate(2000.0, 4.0);
    cfg.request.withDeadline(50 * sim::kMillisecond, 2);
    Fleet fleet(2, cfg, 2 * sim::kMillisecond);

    host::RankingServiceParams params;
    params.cores = 8;
    host::RankingServer server(fleet.eq, params, nullptr, 42);
    server.attachCluster(*fleet.client, "bing");
    EXPECT_EQ(server.retryPolicy().accelDeadline, 50 * sim::kMillisecond);

    int completed = 0, shed = 0;
    for (int i = 0; i < 10; ++i) {
        if (!server.submitQuery([&](sim::TimePs) { ++completed; }))
            ++shed;
    }
    fleet.eq.runAll();
    // Burst of 4 admitted, 6 shed at t=0; the admitted queries complete
    // through the cluster-routed accelerators.
    EXPECT_EQ(shed, 6);
    EXPECT_EQ(completed, 4);
    EXPECT_EQ(server.shedQueries(), 6u);
    EXPECT_EQ(fleet.client->admission().shed(), 6u);
    EXPECT_GE(fleet.client->routed(), 4u);
    EXPECT_EQ(server.softwareFallbacks(), 0u);
}

TEST(ClusterClient, SampledFlowCarriesServingAnnotation)
{
    obs::Observability hub;
    hub.flows.setEnabled(true);
    hub.flows.setSampleEvery(1);

    ServingConfig cfg;
    Fleet fleet(2, cfg);
    fleet.client->attachObservability(&hub);

    host::RankingServiceParams params;
    host::RankingServer server(fleet.eq, params, nullptr, 7);
    server.attachObservability(&hub, "rank0");
    server.setAccelerator(fleet.client.get());
    int done = 0;
    server.submitQuery([&](sim::TimePs) { ++done; });
    fleet.eq.runAll();
    ASSERT_EQ(done, 1);

    // The completed flow must carry a zero-width serving annotation
    // naming the backend, and attribution must still sum exactly.
    ASSERT_FALSE(hub.flows.exemplars().empty());
    const obs::FlowTrace &t = hub.flows.exemplars().front();
    bool has_serving_hop = false;
    for (const obs::Span &s : t.spans) {
        if (s.hop.rfind("serving.svc.host", 0) == 0) {
            has_serving_hop = true;
            EXPECT_EQ(s.start, s.end) << "annotation must be zero-width";
        }
    }
    EXPECT_TRUE(has_serving_hop);
    EXPECT_TRUE(obs::attributeLatency(t).consistent());
}

TEST(ClusterClientDeathTest, InvalidServingConfigsAreFatal)
{
    EventQueue eq;
    auto make = [&](ServingConfig cfg) {
        ClusterClient cc(eq, "svc", [] { return std::vector<int>{}; },
                         cfg);
    };
    ServingConfig bad_bound;
    bad_bound.withConsistentHash(64, 1.0);
    EXPECT_DEATH(make(bad_bound), "chLoadBound");
    ServingConfig bad_vnodes;
    bad_vnodes.withConsistentHash(0, 1.25);
    EXPECT_DEATH(make(bad_vnodes), "chVnodes");
    ServingConfig bad_policy;
    bad_policy.request.maxAttempts = 0;
    EXPECT_DEATH(make(bad_policy), "maxAttempts");
    ServingConfig bad_admission;
    bad_admission.admission.ratePerSec = -2.0;
    EXPECT_DEATH(make(bad_admission), "ratePerSec");
}

// ---------------------------------------------------------------------
// Determinism: same seed, same snapshot, per policy
// ---------------------------------------------------------------------

struct ScenarioResult {
    std::string snapshot;
    std::vector<int> backendRequests;
};

ScenarioResult
servingScenario(BalancerPolicy policy, std::uint64_t seed)
{
    obs::Observability hub;
    ServingConfig cfg;
    cfg.balancer = policy;
    cfg.seed = seed;
    cfg.ejection.attemptTimeout = 20 * sim::kMillisecond;
    cfg.admission.withRate(5000.0, 8.0);

    EventQueue eq;
    std::vector<int> instances{0, 1, 2};
    std::vector<std::unique_ptr<StubAccelerator>> accels;
    // Deterministic but distinct service times per backend.
    for (int i = 0; i < 3; ++i)
        accels.push_back(std::make_unique<StubAccelerator>(
            eq, (i + 1) * sim::kMillisecond));
    ClusterClient client(eq, "svc", [&] { return instances; }, cfg);
    for (int i = 0; i < 3; ++i)
        client.registerEndpoint(i, accels[i].get());
    client.attachObservability(&hub);

    // A fixed arrival trace: 40 requests, 0.4 ms apart, some shed by
    // admission, the rest routed by the policy under test.
    for (int i = 0; i < 40; ++i) {
        eq.scheduleAfter((1 + i) * 400 * sim::kMicrosecond, [&] {
            if (client.admit())
                client.compute(50, {});
        });
    }
    eq.runAll();
    ScenarioResult result;
    result.snapshot = hub.registry.snapshotJson();
    for (const auto &a : accels)
        result.backendRequests.push_back(a->requests);
    return result;
}

TEST(ServingDeterminism, SameSeedSameSnapshotPerPolicy)
{
    for (BalancerPolicy policy :
         {BalancerPolicy::kRoundRobin, BalancerPolicy::kLeastOutstanding,
          BalancerPolicy::kBoundedLoadConsistentHash}) {
        const ScenarioResult a = servingScenario(policy, 1234);
        const ScenarioResult b = servingScenario(policy, 1234);
        EXPECT_EQ(a.snapshot, b.snapshot)
            << "policy " << serving::balancerPolicyName(policy)
            << " not byte-identical across same-seed runs";
        EXPECT_EQ(a.backendRequests, b.backendRequests);
        EXPECT_FALSE(a.snapshot.empty());
    }
}

TEST(ServingDeterminism, PoliciesActuallyRouteDifferently)
{
    // Sanity: the three policies are not secretly the same code path.
    // RR splits the 40-request trace 14/13/13 regardless of backend
    // speed; LOR shifts load toward the fastest backend; CH spreads by
    // per-request random key.
    const auto rr = servingScenario(BalancerPolicy::kRoundRobin, 99);
    const auto lor =
        servingScenario(BalancerPolicy::kLeastOutstanding, 99);
    const auto ch = servingScenario(
        BalancerPolicy::kBoundedLoadConsistentHash, 99);
    EXPECT_EQ(rr.backendRequests, (std::vector<int>{14, 13, 13}));
    EXPECT_NE(lor.backendRequests, rr.backendRequests);
    EXPECT_NE(ch.backendRequests, rr.backendRequests);
}

}  // namespace
