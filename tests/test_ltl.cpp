/**
 * @file
 * LTL protocol tests over a controllable fake network: reliable in-order
 * exactly-once delivery under loss, duplication, and reordering; NACK
 * fast retransmit vs timeout; DC-QCN rate reaction; failure detection;
 * bandwidth limiting; the RED policer.
 */
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "ltl/dcqcn.hpp"
#include "ltl/ltl_engine.hpp"
#include "ltl/red_policer.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace {

using namespace ccsim;
using ltl::LtlConfig;
using ltl::LtlEngine;
using ltl::LtlMessage;
using sim::EventQueue;

/**
 * Two LTL engines joined by a fault-injectable pipe with a fixed one-way
 * delay. Faults apply to data frames from A to B only (control traffic
 * and the reverse direction are clean), so the test can reason precisely.
 */
struct Pair {
    EventQueue eq;
    std::unique_ptr<LtlEngine> a;
    std::unique_ptr<LtlEngine> b;
    sim::TimePs oneWay = sim::fromNanos(800);

    // Fault injection knobs for A->B data frames.
    std::function<bool(const net::PacketPtr &)> dropIf;
    bool duplicateNext = false;
    int reorderDepth = 0;  ///< hold back this many frames, then release
    std::deque<net::PacketPtr> held;

    std::vector<LtlMessage> delivered;

    explicit Pair(LtlConfig base = LtlConfig{})
    {
        LtlConfig ca = base;
        ca.localIp = {1};
        LtlConfig cb = base;
        cb.localIp = {2};
        a = std::make_unique<LtlEngine>(eq, ca,
                                        [this](const net::PacketPtr &p) {
                                            forwardAtoB(p);
                                        });
        b = std::make_unique<LtlEngine>(eq, cb,
                                        [this](const net::PacketPtr &p) {
                                            // B->A is clean.
                                            eq.scheduleAfter(oneWay, [this, p] {
                                                a->onNetworkPacket(p);
                                            });
                                        });
        b->setDeliveryHandler(
            [this](const LtlMessage &m) { delivered.push_back(m); });
    }

    void forwardAtoB(const net::PacketPtr &p)
    {
        auto hdr = std::static_pointer_cast<ltl::LtlHeader>(p->meta);
        const bool is_data = hdr && (hdr->flags & ltl::kFlagData);
        if (is_data && dropIf && dropIf(p))
            return;
        if (is_data && reorderDepth > 0) {
            held.push_back(p);
            if (static_cast<int>(held.size()) > reorderDepth) {
                // Release in reverse order.
                while (!held.empty()) {
                    auto q = held.back();
                    held.pop_back();
                    eq.scheduleAfter(oneWay, [this, q] {
                        b->onNetworkPacket(q);
                    });
                }
            }
            return;
        }
        eq.scheduleAfter(oneWay, [this, p] { b->onNetworkPacket(p); });
        if (is_data && duplicateNext) {
            duplicateNext = false;
            eq.scheduleAfter(oneWay + 100, [this, p] {
                b->onNetworkPacket(p);
            });
        }
    }

    std::uint16_t connect()
    {
        const std::uint16_t rx = b->openReceive(0);
        return a->openSend({2}, rx);
    }
};

TEST(Ltl, DeliversSingleMessage)
{
    Pair pair;
    const auto conn = pair.connect();
    pair.a->sendMessage(conn, 128, std::make_shared<int>(42));
    pair.eq.runUntil(sim::fromMicros(100));
    ASSERT_EQ(pair.delivered.size(), 1u);
    EXPECT_EQ(pair.delivered[0].bytes, 128u);
    EXPECT_EQ(*std::static_pointer_cast<int>(pair.delivered[0].payload), 42);
    EXPECT_EQ(pair.a->framesRetransmitted(), 0u);
}

TEST(Ltl, SegmentsLargeMessages)
{
    Pair pair;
    const auto conn = pair.connect();
    pair.a->sendMessage(conn, 10000);  // > 7 frames at 1408 B payload
    pair.eq.runUntil(sim::fromMicros(500));
    ASSERT_EQ(pair.delivered.size(), 1u);
    EXPECT_EQ(pair.delivered[0].bytes, 10000u);
    EXPECT_EQ(pair.a->framesSent(), (10000u + 1407) / 1408);
}

TEST(Ltl, ManyMessagesInOrderExactlyOnce)
{
    Pair pair;
    const auto conn = pair.connect();
    for (int i = 0; i < 200; ++i)
        pair.a->sendMessage(conn, 64, std::make_shared<int>(i));
    pair.eq.runUntil(sim::fromMicros(5000));
    ASSERT_EQ(pair.delivered.size(), 200u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(*std::static_pointer_cast<int>(
                      pair.delivered[i].payload),
                  i);
}

TEST(Ltl, RecoversFromSingleLossViaNack)
{
    Pair pair;
    const auto conn = pair.connect();
    int dropped = 0;
    pair.dropIf = [&](const net::PacketPtr &) {
        return ++dropped == 3;  // drop exactly the 3rd data frame
    };
    for (int i = 0; i < 10; ++i)
        pair.a->sendMessage(conn, 64, std::make_shared<int>(i));
    pair.eq.runUntil(sim::fromMicros(2000));
    ASSERT_EQ(pair.delivered.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(*std::static_pointer_cast<int>(
                      pair.delivered[i].payload),
                  i);
    EXPECT_GT(pair.a->framesRetransmitted(), 0u);
    EXPECT_GT(pair.b->nacksSent(), 0u);
    // NACK recovery is fast: well under the 50 us retransmit timeout.
    EXPECT_EQ(pair.a->timeouts(), 0u);
}

TEST(Ltl, RecoversFromLossViaTimeoutWhenNackDisabled)
{
    LtlConfig cfg;
    cfg.enableNack = false;
    Pair pair(cfg);
    const auto conn = pair.connect();
    int dropped = 0;
    pair.dropIf = [&](const net::PacketPtr &) { return ++dropped == 1; };
    pair.a->sendMessage(conn, 64, std::make_shared<int>(7));
    pair.eq.runUntil(sim::fromMicros(30));
    EXPECT_TRUE(pair.delivered.empty());  // still waiting for the timeout
    pair.eq.runUntil(sim::fromMicros(300));
    ASSERT_EQ(pair.delivered.size(), 1u);
    EXPECT_GE(pair.a->timeouts(), 1u);
}

TEST(Ltl, RecoversFromBurstLoss)
{
    Pair pair;
    const auto conn = pair.connect();
    int count = 0;
    pair.dropIf = [&](const net::PacketPtr &) {
        ++count;
        return count >= 5 && count <= 12;  // drop a burst of 8 frames
    };
    for (int i = 0; i < 30; ++i)
        pair.a->sendMessage(conn, 1408, std::make_shared<int>(i));
    pair.eq.runUntil(sim::fromMicros(5000));
    ASSERT_EQ(pair.delivered.size(), 30u);
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(*std::static_pointer_cast<int>(
                      pair.delivered[i].payload),
                  i);
}

TEST(Ltl, SurvivesRandomLossUnderLoad)
{
    Pair pair;
    const auto conn = pair.connect();
    sim::Rng rng(77);
    pair.dropIf = [&](const net::PacketPtr &) {
        return rng.bernoulli(0.05);
    };
    const int kMessages = 500;
    for (int i = 0; i < kMessages; ++i)
        pair.a->sendMessage(conn, 256, std::make_shared<int>(i));
    pair.eq.runUntil(sim::fromMicros(200000));
    ASSERT_EQ(pair.delivered.size(),
              static_cast<std::size_t>(kMessages));
    for (int i = 0; i < kMessages; ++i)
        EXPECT_EQ(*std::static_pointer_cast<int>(
                      pair.delivered[i].payload),
                  i);
}

TEST(Ltl, DuplicateFramesAreReackedNotRedelivered)
{
    Pair pair;
    const auto conn = pair.connect();
    pair.duplicateNext = true;
    pair.a->sendMessage(conn, 64, std::make_shared<int>(1));
    pair.a->sendMessage(conn, 64, std::make_shared<int>(2));
    pair.eq.runUntil(sim::fromMicros(500));
    EXPECT_EQ(pair.delivered.size(), 2u);
    EXPECT_GE(pair.b->duplicateFrames(), 1u);
}

TEST(Ltl, ReorderedFramesDeliveredInOrder)
{
    Pair pair;
    const auto conn = pair.connect();
    pair.reorderDepth = 3;
    for (int i = 0; i < 4; ++i)
        pair.a->sendMessage(conn, 64, std::make_shared<int>(i));
    pair.eq.runUntil(sim::fromMicros(2000));
    ASSERT_EQ(pair.delivered.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(*std::static_pointer_cast<int>(
                      pair.delivered[i].payload),
                  i);
    EXPECT_GT(pair.b->outOfOrderFrames(), 0u);
}

TEST(Ltl, RttMeasuredOnCleanPath)
{
    Pair pair;
    const auto conn = pair.connect();
    for (int i = 0; i < 20; ++i)
        pair.a->sendMessage(conn, 64);
    pair.eq.runUntil(sim::fromMicros(1000));
    ASSERT_GT(pair.a->rttUs().count(), 0u);
    // RTT ~ tx + oneWay + rx + ackGen + tx + oneWay + rx.
    const LtlConfig defaults;
    const double expect_us = sim::toMicros(
        2 * pair.oneWay + 2 * (defaults.txPathDelay + defaults.rxPathDelay) +
        defaults.ackGenDelay);
    EXPECT_NEAR(pair.a->rttUs().mean(), expect_us, 0.5);
}

TEST(Ltl, FailureDetectedAfterMaxRetries)
{
    LtlConfig cfg;
    cfg.maxRetries = 3;
    Pair pair(cfg);
    const auto conn = pair.connect();
    pair.dropIf = [](const net::PacketPtr &) { return true; };  // dead path
    int failed_conn = -1;
    pair.a->setFailureHandler(
        [&](std::uint16_t c) { failed_conn = c; });
    pair.a->sendMessage(conn, 64);
    pair.eq.runUntil(sim::fromMicros(5000));
    EXPECT_EQ(failed_conn, conn);
    EXPECT_TRUE(pair.delivered.empty());
}

TEST(Ltl, WindowLimitsInFlightFrames)
{
    LtlConfig cfg;
    cfg.sendWindowFrames = 4;
    Pair pair(cfg);
    const auto conn = pair.connect();
    // Block all data so nothing is ever ACKed.
    pair.dropIf = [](const net::PacketPtr &) { return true; };
    for (int i = 0; i < 100; ++i)
        pair.a->sendMessage(conn, 1408);
    pair.eq.runUntil(sim::fromMicros(20));
    EXPECT_EQ(pair.a->framesSent(), 4u);  // window-bound
}

TEST(Ltl, BandwidthLimitPacesTransmission)
{
    LtlConfig fast;
    fast.bandwidthLimitGbps = 40.0;
    fast.enableDcqcn = false;
    LtlConfig slow = fast;
    slow.bandwidthLimitGbps = 1.0;

    auto measure = [](LtlConfig cfg) {
        Pair pair(cfg);
        const auto conn = pair.connect();
        for (int i = 0; i < 50; ++i)
            pair.a->sendMessage(conn, 1408);
        pair.eq.runUntil(sim::fromMicros(2000000));
        EXPECT_EQ(pair.delivered.size(), 50u);
        return pair.delivered.empty()
                   ? sim::TimePs{0}
                   : pair.eq.now();  // bounded by runUntil anyway
    };
    // Completion under the slow limiter takes much longer: check frames
    // finish by comparing how long the last delivery took.
    Pair fast_pair(fast);
    auto fc = fast_pair.connect();
    for (int i = 0; i < 50; ++i)
        fast_pair.a->sendMessage(fc, 1408);
    fast_pair.eq.runAll();
    const auto fast_done = fast_pair.eq.now();

    Pair slow_pair(slow);
    auto sc = slow_pair.connect();
    for (int i = 0; i < 50; ++i)
        slow_pair.a->sendMessage(sc, 1408);
    slow_pair.eq.runAll();
    const auto slow_done = slow_pair.eq.now();

    EXPECT_GT(slow_done, 10 * fast_done);
    (void)measure;
}

TEST(Ltl, CnpSlowsSenderRate)
{
    Pair pair;
    const auto conn = pair.connect();
    EXPECT_DOUBLE_EQ(pair.a->currentRateGbps(conn), 40.0);
    // Mark every data frame with ECN before it reaches B.
    pair.dropIf = [](const net::PacketPtr &p) {
        p->ecnMarked = true;
        return false;
    };
    for (int i = 0; i < 20; ++i)
        pair.a->sendMessage(conn, 1408);
    pair.eq.runUntil(sim::fromMicros(200));
    EXPECT_GT(pair.b->cnpsSent(), 0u);
    EXPECT_GT(pair.a->cnpsReceived(), 0u);
    EXPECT_LT(pair.a->currentRateGbps(conn), 40.0);
}

TEST(Ltl, RateRecoversAfterCongestionClears)
{
    Pair pair;
    const auto conn = pair.connect();
    bool congested = true;
    pair.dropIf = [&](const net::PacketPtr &p) {
        p->ecnMarked = congested;
        return false;
    };
    for (int i = 0; i < 10; ++i)
        pair.a->sendMessage(conn, 1408);
    pair.eq.runUntil(sim::fromMicros(300));
    const double reduced = pair.a->currentRateGbps(conn);
    ASSERT_LT(reduced, 40.0);
    congested = false;
    // Keep a trickle going and let DC-QCN recovery timers run.
    for (int i = 0; i < 10; ++i)
        pair.a->sendMessage(conn, 256);
    pair.eq.runUntil(sim::fromMicros(3000));
    EXPECT_GT(pair.a->currentRateGbps(conn), reduced);
}

TEST(Dcqcn, CutsRateMultiplicativelyAndRecovers)
{
    EventQueue eq;
    ltl::DcqcnConfig cfg;
    ltl::DcqcnController rp(eq, cfg);
    EXPECT_DOUBLE_EQ(rp.currentRateGbps(), 40.0);
    rp.onCongestionNotification();
    const double after_one = rp.currentRateGbps();
    EXPECT_LT(after_one, 40.0);
    rp.onCongestionNotification();
    rp.onCongestionNotification();
    EXPECT_LT(rp.currentRateGbps(), after_one);
    eq.runUntil(sim::fromMicros(5000));
    EXPECT_NEAR(rp.currentRateGbps(), 40.0, 0.5);
}

TEST(Dcqcn, RateNeverBelowMinimum)
{
    EventQueue eq;
    ltl::DcqcnConfig cfg;
    cfg.minRateGbps = 0.5;
    ltl::DcqcnController rp(eq, cfg);
    for (int i = 0; i < 200; ++i)
        rp.onCongestionNotification();
    EXPECT_GE(rp.currentRateGbps(), 0.5);
}

TEST(RedPolicer, PassesUnderLimitDropsOverLimit)
{
    ltl::RedPolicer red(1.0 /*Gb/s*/, 64 * 1024);
    // Under the limit: everything passes.
    sim::TimePs t = 0;
    int pass = 0;
    for (int i = 0; i < 100; ++i) {
        t += sim::fromMicros(100);  // 1500 B / 100 us = 0.12 Gb/s
        pass += red.allow(t, 1500) ? 1 : 0;
    }
    EXPECT_EQ(pass, 100);

    // 10x over the limit: a large fraction must be dropped.
    int pass2 = 0;
    for (int i = 0; i < 2000; ++i) {
        t += sim::fromMicros(1);  // 12 Gb/s offered
        pass2 += red.allow(t, 1500) ? 1 : 0;
    }
    EXPECT_LT(pass2, 1200);
    EXPECT_GT(red.drops(), 0u);
}

}  // namespace
