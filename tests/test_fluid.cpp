/**
 * @file
 * Hybrid fluid/packet traffic tests: exact integer byte accounting
 * (fold-schedule independence), the conservation invariant across the
 * promote/demote fidelity boundary, zero-fluid byte-identity of the
 * packet path, and pod-scale tail equivalence between a fluid
 * background and the same background simulated packet-by-packet.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "net/fluid.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace {

using namespace ccsim;
using sim::EventQueue;
using sim::TimePs;

/** A small multi-pod fabric every fluid test can route across. */
net::TopologyConfig
smallFabric()
{
    net::TopologyConfig cfg;
    cfg.hostsPerRack = 2;
    cfg.racksPerPod = 2;
    cfg.l1PerPod = 2;
    cfg.pods = 4;
    cfg.l2Count = 2;
    return cfg;
}

TEST(Fluid, ExactIntegralCarriesSubByteRemainder)
{
    EventQueue eq;
    net::Topology topo(eq, smallFabric());
    net::FluidTrafficModel fluid(eq, topo);

    // 8 bit/s = exactly one byte per simulated second.
    const auto id = fluid.addFlow(0, topo.numHosts() - 1, 8);
    eq.runFor(sim::fromSeconds(0.5));
    fluid.foldAll();
    EXPECT_EQ(fluid.flow(id)->fluidBytes, 0u);  // half a byte pending

    eq.runFor(sim::fromSeconds(0.5));
    fluid.foldAll();
    EXPECT_EQ(fluid.flow(id)->fluidBytes, 1u);  // remainder completed it

    // 1 bit/s: needs a full 8 s for the first byte.
    const auto slow = fluid.addFlow(1, 2, 1);
    eq.runFor(sim::fromSeconds(7.99));
    fluid.foldAll();
    EXPECT_EQ(fluid.flow(slow)->fluidBytes, 0u);
    eq.runFor(sim::fromSeconds(0.02));
    fluid.foldAll();
    EXPECT_EQ(fluid.flow(slow)->fluidBytes, 1u);
}

TEST(Fluid, ByteTotalsIndependentOfFoldSchedule)
{
    // Same rate schedule, wildly different fold schedules: per-flow byte
    // totals must match exactly (the invariant that makes window-driven
    // retuning safe at any cadence).
    auto run = [](int extra_folds_seed) {
        EventQueue eq;
        net::Topology topo(eq, smallFabric());
        net::FluidTrafficModel fluid(eq, topo);
        sim::Rng rng(99);  // same flow set in both runs
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < 16; ++i) {
            const int src = int(rng.uniformInt(topo.numHosts()));
            int dst = int(rng.uniformInt(topo.numHosts()));
            if (dst == src)
                dst = (dst + 1) % topo.numHosts();
            // Awkward rates so sub-byte remainders are always in play.
            ids.push_back(fluid.addFlow(src, dst, 7 + 13 * i));
        }
        sim::Rng foldRng(extra_folds_seed);
        for (int step = 0; step < 20; ++step) {
            eq.runFor(sim::fromSeconds(0.1));
            // The rate schedule (fixed): retune every 4th step.
            if (step % 4 == 3)
                for (std::size_t i = 0; i < ids.size(); ++i)
                    fluid.setRate(ids[i], 5 + 17 * ((step + int(i)) % 7));
            // The fold schedule (varies between runs).
            if (extra_folds_seed != 0 && foldRng.uniformInt(3) == 0)
                fluid.foldAll();
        }
        fluid.foldAll();
        std::vector<std::uint64_t> bytes;
        for (auto id : ids)
            bytes.push_back(fluid.flow(id)->fluidBytes);
        EXPECT_TRUE(fluid.verify().ok);
        return bytes;
    };
    const auto never = run(0);
    const auto often = run(1);
    const auto other = run(2);
    EXPECT_EQ(never, often);
    EXPECT_EQ(never, other);
}

TEST(Fluid, ConservationHoldsAcrossRandomPromoteDemote)
{
    EventQueue eq;
    net::Topology topo(eq, smallFabric());
    net::FluidTrafficModel fluid(eq, topo);
    sim::Rng rng(4242);

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 12; ++i)
        ids.push_back(fluid.addFlow(
            int(rng.uniformInt(topo.numHosts())),
            int((rng.uniformInt(topo.numHosts() - 1) + 1 +
                 rng.uniformInt(topo.numHosts()))) %
                topo.numHosts(),
            1000 + rng.uniformInt(100000)));

    for (int step = 0; step < 200; ++step) {
        eq.runFor(1 + rng.uniformInt(50) * sim::kMillisecond);
        const auto id = ids[rng.uniformInt(ids.size())];
        const net::FluidFlow *f = fluid.flow(id);
        if (f == nullptr)
            continue;
        switch (rng.uniformInt(5)) {
        case 0:
            fluid.setRate(id, 500 + rng.uniformInt(200000));
            break;
        case 1:
            fluid.promote(id);
            break;
        case 2:
            if (f->promoted)
                fluid.creditPacketBytes(id, rng.uniformInt(100000));
            break;
        case 3:
            if (f->promoted)
                fluid.demote(id, 500 + rng.uniformInt(200000));
            break;
        case 4:
            if (rng.uniformInt(10) == 0)
                fluid.removeFlow(id);
            break;
        }
    }
    fluid.foldAll();
    const auto c = fluid.verify();
    EXPECT_TRUE(c.ok);
    EXPECT_EQ(c.channelCredits, c.expectedChannelCredits);
    EXPECT_EQ(c.flows, 12u);
}

TEST(Fluid, SubByteRemainderSurvivesPromoteDemoteRoundTrip)
{
    EventQueue eq;
    net::Topology topo(eq, smallFabric());
    net::FluidTrafficModel fluid(eq, topo);

    const auto id = fluid.addFlow(0, 5, 8);  // one byte per second
    eq.runFor(sim::fromSeconds(0.5));
    fluid.promote(id);   // folds: 0 bytes, half a byte of remainder
    eq.runFor(sim::fromSeconds(3.0));  // packet regime: no fluid accrual
    fluid.demote(id, 8);
    eq.runFor(sim::fromSeconds(0.5));
    fluid.foldAll();
    // 0.5 s + 0.5 s of fluid time at 1 B/s: exactly one byte, which only
    // works if the promote/demote round trip preserved the remainder.
    EXPECT_EQ(fluid.flow(id)->fluidBytes, 1u);
    EXPECT_TRUE(fluid.verify().ok);
}

TEST(Fluid, MonitoredChannelsSelectCrossingFlows)
{
    EventQueue eq;
    net::Topology topo(eq, smallFabric());
    net::FluidTrafficModel fluid(eq, topo);

    const int far = topo.hostIndex(3, 1, 1);
    const auto cross = fluid.addFlow(0, far, 1000);
    // Same TOR, and a rack apart from the cross flow so no access
    // channel is shared with it.
    const auto local = fluid.addFlow(2, 3, 1000);

    ASSERT_FALSE(fluid.flow(cross)->path.empty());
    net::Channel *hop = fluid.flow(cross)->path.front();
    EXPECT_FALSE(fluid.crossesMonitored(cross));
    fluid.setMonitored(hop, true);
    EXPECT_TRUE(fluid.crossesMonitored(cross));
    EXPECT_FALSE(fluid.crossesMonitored(local));
    const auto crossing = fluid.flowsCrossingMonitored();
    ASSERT_EQ(crossing.size(), 1u);
    EXPECT_EQ(crossing.front(), cross);
    fluid.setMonitored(hop, false);
    EXPECT_FALSE(fluid.crossesMonitored(cross));
}

TEST(Fluid, ChannelReturnsToPristineWhenRatesCancel)
{
    EventQueue eq;
    net::Topology topo(eq, smallFabric());
    net::Channel &ch = topo.hostTx(0);
    EXPECT_EQ(ch.fluidBps(), 0u);
    ch.addFluidBps(10'000'000'000ull);
    ch.addFluidBps(5'000'000'000ull);
    EXPECT_EQ(ch.fluidBps(), 15'000'000'000ull);
    EXPECT_GT(ch.fluidUtilization(), 0.0);
    ch.removeFluidBps(5'000'000'000ull);
    ch.removeFluidBps(10'000'000'000ull);
    // Integer rates cancel exactly: the channel is indistinguishable
    // from one that never carried fluid load.
    EXPECT_EQ(ch.fluidBps(), 0u);
    EXPECT_EQ(ch.fluidUtilization(), 0.0);
}

/** A no-op role so LTL deliveries have a destination. */
struct NullRole : fpga::Role {
    int port = -1;
    std::string name() const override { return "null"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &) override {}
};

/** Cross-pod LTL RTT samples on a 2-pod, single-path fabric, under a
 * configurable background: none, fluid aggregates, or real packets. */
enum class Background { kNone, kFluid, kPacket };

std::vector<double>
probeRtts(Background bg)
{
    EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 1;  // single path: the fluid ECMP choice and
    cfg.topology.l2Count = 1;   // the packet route coincide by design
    cfg.topology.pods = 2;
    cfg.createNics = false;
    core::ConfigurableCloud cloud(eq, cfg);
    net::Topology &topo = cloud.topology();
    net::FluidTrafficModel fluid(eq, topo);

    // Four background flows pod0 -> pod1 at 2 Gbit/s each (20% of the
    // shared 40G trunk), as either fluid rates or real LTL traffic.
    const std::uint64_t kRate = 2'000'000'000ull;
    std::vector<std::unique_ptr<NullRole>> roles;
    std::vector<core::LtlChannel> channels;
    for (int i = 0; i < 4 && bg != Background::kNone; ++i) {
        const int src = topo.hostIndex(0, i % 2, i / 2);
        const int dst = topo.hostIndex(1, i % 2, 1 + i / 2);
        if (bg == Background::kFluid) {
            fluid.addFlow(src, dst, kRate);
            continue;
        }
        roles.push_back(std::make_unique<NullRole>());
        if (cloud.shell(dst).addRole(roles.back().get()) < 0)
            ADD_FAILURE() << "no role slot";
        channels.push_back(cloud.openLtl(src, dst, roles.back()->port));
        auto *engine = cloud.shell(src).ltlEngine();
        constexpr std::uint32_t kMsgBytes = 1024;
        const auto gap =
            static_cast<TimePs>((8.0 * kMsgBytes / double(kRate)) *
                                double(sim::kSecond));
        for (TimePs t = gap; t < sim::fromMillis(3); t += gap) {
            eq.schedule(t, [engine, conn = channels.back().sendConn()] {
                engine->sendMessage(conn, kMsgBytes);
            });
        }
    }

    // The probe: cross-pod pings at an idle 20 us spacing.
    const int src = topo.hostIndex(0, 0, 3);
    const int dst = topo.hostIndex(1, 1, 3);
    NullRole sink;
    EXPECT_GE(cloud.shell(dst).addRole(&sink), 0);
    auto probe = cloud.openLtl(src, dst, sink.port);
    auto *engine = cloud.shell(src).ltlEngine();
    for (int i = 0; i < 100; ++i) {
        eq.scheduleAfter(i * 20 * sim::kMicrosecond,
                         [engine, conn = probe.sendConn()] {
                             engine->sendMessage(conn, 64);
                         });
    }
    eq.runFor(sim::fromMillis(4));
    return engine->rttUs().raw();
}

TEST(Fluid, PodScaleTailsMatchAllPacketWithinTolerance)
{
    const auto baseline = probeRtts(Background::kNone);
    const auto fluidBg = probeRtts(Background::kFluid);
    const auto packetBg = probeRtts(Background::kPacket);
    ASSERT_EQ(baseline.size(), 100u);
    ASSERT_EQ(fluidBg.size(), 100u);
    ASSERT_EQ(packetBg.size(), 100u);

    auto p99 = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        return v[static_cast<std::size_t>(0.99 * (v.size() - 1))];
    };
    const double pkt = p99(packetBg), fld = p99(fluidBg);
    // The fluid approximation must land in the same tail regime as the
    // packet-level simulation of the identical background (the residual
    // -rate slowdown stands in for per-packet queueing).
    EXPECT_LT(std::abs(fld - pkt) / pkt, 0.25);
    // And a loaded trunk must not *undercut* the unloaded baseline.
    EXPECT_GE(fld, p99(baseline) * 0.999);
}

TEST(Fluid, BackgroundOnlyRunsAreByteStablePerSeed)
{
    // Two identical hybrid runs: the probe's RTT sample vector must be
    // bit-for-bit identical (the fluid model adds no hidden state).
    const auto a = probeRtts(Background::kFluid);
    const auto b = probeRtts(Background::kFluid);
    EXPECT_EQ(a, b);
    // And a fluid background that was added then removed leaves packet
    // timing exactly as if it never existed.
    auto addRemove = [] {
        EventQueue eq;
        net::Topology topo(eq, smallFabric());
        net::FluidTrafficModel fluid(eq, topo);
        const auto id = fluid.addFlow(0, topo.numHosts() - 1,
                                      10'000'000'000ull);
        fluid.removeFlow(id);
        return true;
    };
    EXPECT_TRUE(addRemove());
    const auto clean = probeRtts(Background::kNone);
    const auto after = probeRtts(Background::kNone);
    EXPECT_EQ(clean, after);
}

}  // namespace
