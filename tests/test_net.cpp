/**
 * @file
 * Network substrate tests: channel serialization/pausing, link PFC
 * interception, switch routing/ECN/PFC, topology connectivity.
 */
#include <gtest/gtest.h>

#include <vector>

#include "net/channel.hpp"
#include "net/nic.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using net::Channel;
using net::Link;
using net::Packet;
using net::PacketPtr;
using net::PacketSink;
using sim::EventQueue;
using sim::TimePs;

/** Collects delivered packets with timestamps. */
class CollectorSink : public PacketSink
{
  public:
    explicit CollectorSink(EventQueue &eq) : queue(eq) {}
    void acceptPacket(const PacketPtr &pkt) override
    {
        packets.push_back(pkt);
        times.push_back(queue.now());
    }
    EventQueue &queue;
    std::vector<PacketPtr> packets;
    std::vector<TimePs> times;
};

PacketPtr
makeUdp(net::Ipv4Addr src, net::Ipv4Addr dst, std::uint32_t payload,
        std::uint8_t prio = net::kTcLossy)
{
    auto pkt = net::makePacket();
    pkt->ipSrc = src;
    pkt->ipDst = dst;
    pkt->payloadBytes = payload;
    pkt->priority = prio;
    return pkt;
}

TEST(Channel, SerializationPlusPropagation)
{
    EventQueue eq;
    Channel ch(eq, "ch", 40.0, 100 * sim::kNanosecond, 1 << 20);
    CollectorSink sink(eq);
    ch.setSink(&sink);

    auto pkt = makeUdp({1}, {2}, 1000);
    const auto wire = pkt->wireBytes();
    ch.send(pkt);
    eq.runAll();
    ASSERT_EQ(sink.packets.size(), 1u);
    EXPECT_EQ(sink.times[0],
              sim::serializationDelay(wire, 40.0) + 100 * sim::kNanosecond);
}

TEST(Channel, BackToBackPacketsSerialize)
{
    EventQueue eq;
    Channel ch(eq, "ch", 40.0, 0, 1 << 20);
    CollectorSink sink(eq);
    ch.setSink(&sink);
    auto a = makeUdp({1}, {2}, 1500);
    auto b = makeUdp({1}, {2}, 1500);
    ch.send(a);
    ch.send(b);
    eq.runAll();
    ASSERT_EQ(sink.packets.size(), 2u);
    const auto gap = sink.times[1] - sink.times[0];
    EXPECT_EQ(gap, sim::serializationDelay(a->wireBytes(), 40.0));
}

TEST(Channel, DropsWhenQueueFull)
{
    EventQueue eq;
    Channel ch(eq, "ch", 0.001 /*very slow*/, 0, 4000);
    CollectorSink sink(eq);
    ch.setSink(&sink);
    int accepted = 0;
    for (int i = 0; i < 10; ++i)
        accepted += ch.send(makeUdp({1}, {2}, 1400)) ? 1 : 0;
    EXPECT_LT(accepted, 10);
    EXPECT_GT(ch.packetsDropped(), 0u);
}

TEST(Channel, PfcPausesOnlyThatPriority)
{
    EventQueue eq;
    Channel ch(eq, "ch", 40.0, 0, 1 << 20);
    CollectorSink sink(eq);
    ch.setSink(&sink);

    ch.pausePriority(net::kTcLossless, 10 * sim::kMicrosecond);
    auto lossless = makeUdp({1}, {2}, 100, net::kTcLossless);
    auto lossy = makeUdp({1}, {2}, 100, net::kTcLossy);
    ch.send(lossless);
    ch.send(lossy);
    eq.runUntil(5 * sim::kMicrosecond);
    // Only the lossy packet got through while the class was paused.
    ASSERT_EQ(sink.packets.size(), 1u);
    EXPECT_EQ(sink.packets[0]->priority, net::kTcLossy);
    eq.runUntil(20 * sim::kMicrosecond);
    ASSERT_EQ(sink.packets.size(), 2u);
    EXPECT_GE(sink.times[1], 10 * sim::kMicrosecond);
}

TEST(Channel, ResumeZeroDurationUnpauses)
{
    EventQueue eq;
    Channel ch(eq, "ch", 40.0, 0, 1 << 20);
    CollectorSink sink(eq);
    ch.setSink(&sink);
    ch.pausePriority(3, 100 * sim::kMicrosecond);
    ch.send(makeUdp({1}, {2}, 100, 3));
    eq.runUntil(1 * sim::kMicrosecond);
    EXPECT_TRUE(sink.packets.empty());
    ch.pausePriority(3, 0);  // X-ON
    eq.runUntil(2 * sim::kMicrosecond);
    EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(Link, PfcFrameIsConsumedAndPausesReverse)
{
    EventQueue eq;
    Link link(eq, "l", 40.0, 1.0);
    CollectorSink a(eq), b(eq);
    link.attachA(&a);
    link.attachB(&b);

    // B sends a PFC pause toward A; A's transmitter must pause and the
    // PFC frame must NOT be delivered to A's device.
    link.bToA().send(net::makePfcPause(net::kTcLossless,
                                       50 * sim::kMicrosecond));
    eq.runUntil(1 * sim::kMicrosecond);  // let the pause frame land at A
    auto data = makeUdp({1}, {2}, 200, net::kTcLossless);
    link.aToB().send(data);
    eq.runUntil(10 * sim::kMicrosecond);
    EXPECT_TRUE(a.packets.empty());  // PFC consumed by the shim
    EXPECT_TRUE(b.packets.empty());  // data paused
    eq.runUntil(100 * sim::kMicrosecond);
    EXPECT_EQ(b.packets.size(), 1u);  // released after pause expiry
}

TEST(Switch, RoutesByHostRoute)
{
    EventQueue eq;
    net::SwitchConfig cfg;
    cfg.forwardingLatency = 450 * sim::kNanosecond;
    net::Switch sw(eq, cfg);

    Link l0(eq, "h0", 40.0, 1.0), l1(eq, "h1", 40.0, 1.0);
    CollectorSink h0(eq), h1(eq);
    // Hosts at end A, switch at end B.
    l0.attachA(&h0);
    l1.attachA(&h1);
    const int p0 = sw.addPort(&l0.bToA());
    const int p1 = sw.addPort(&l1.bToA());
    l0.attachB(sw.portSink(p0));
    l1.attachB(sw.portSink(p1));
    sw.addHostRoute({10}, p0);
    sw.addHostRoute({11}, p1);

    l0.aToB().send(makeUdp({10}, {11}, 500));  // h0 -> h1
    eq.runAll();
    EXPECT_EQ(h1.packets.size(), 1u);
    EXPECT_TRUE(h0.packets.empty());
    EXPECT_EQ(sw.packetsForwarded(), 1u);
}

TEST(Switch, PrefixAndDefaultRoutes)
{
    EventQueue eq;
    net::Switch sw(eq, net::SwitchConfig{});
    Link l0(eq, "a", 40.0, 1.0), l1(eq, "b", 40.0, 1.0),
        l2(eq, "c", 40.0, 1.0);
    CollectorSink s0(eq), s1(eq), s2(eq);
    l0.attachA(&s0);
    l1.attachA(&s1);
    l2.attachA(&s2);
    const int p0 = sw.addPort(&l0.bToA());
    const int p1 = sw.addPort(&l1.bToA());
    const int p2 = sw.addPort(&l2.bToA());
    sw.addRoute(net::Ipv4Addr::of(10, 1, 0, 0), 16, p0);
    sw.addRoute(net::Ipv4Addr::of(10, 1, 7, 0), 24, p1);  // longer match
    sw.setDefaultRoutes({p2});

    // /24 beats /16.
    auto pkt1 = makeUdp({1}, net::Ipv4Addr::of(10, 1, 7, 9), 100);
    // /16 only.
    auto pkt2 = makeUdp({1}, net::Ipv4Addr::of(10, 1, 3, 9), 100);
    // neither: default.
    auto pkt3 = makeUdp({1}, net::Ipv4Addr::of(10, 9, 0, 9), 100);
    sw.portSink(p2)->acceptPacket(pkt1);
    sw.portSink(p0)->acceptPacket(pkt2);
    sw.portSink(p0)->acceptPacket(pkt3);
    eq.runAll();
    EXPECT_EQ(s1.packets.size(), 1u);
    EXPECT_EQ(s0.packets.size(), 1u);
    EXPECT_EQ(s2.packets.size(), 1u);
}

TEST(Switch, DropsWithoutRoute)
{
    EventQueue eq;
    net::Switch sw(eq, net::SwitchConfig{});
    Link l0(eq, "a", 40.0, 1.0);
    const int p0 = sw.addPort(&l0.bToA());
    sw.portSink(p0)->acceptPacket(makeUdp({1}, {99}, 100));
    eq.runAll();
    EXPECT_EQ(sw.routeMisses(), 1u);
    EXPECT_EQ(sw.packetsDropped(), 1u);
}

TEST(Switch, EcnMarksWhenQueueDeep)
{
    EventQueue eq;
    net::SwitchConfig cfg;
    cfg.ecnThresholdBytes = 3000;  // tiny threshold
    cfg.forwardingLatency = 0;
    net::Switch sw(eq, cfg);
    Link out(eq, "o", 1.0 /*slow*/, 1.0);
    CollectorSink dst(eq);
    out.attachA(&dst);
    const int po = sw.addPort(&out.bToA());
    Link in(eq, "i", 40.0, 1.0);
    const int pi = sw.addPort(&in.bToA());
    sw.addHostRoute({5}, po);

    for (int i = 0; i < 20; ++i) {
        auto pkt = makeUdp({1}, {5}, 1400, net::kTcLossy);
        pkt->ecnCapable = true;
        sw.portSink(pi)->acceptPacket(pkt);
    }
    eq.runAll();
    EXPECT_GT(sw.packetsEcnMarked(), 0u);
    bool any_marked = false;
    for (const auto &pkt : dst.packets)
        any_marked = any_marked || pkt->ecnMarked;
    EXPECT_TRUE(any_marked);
}

TEST(Switch, LosslessClassTriggersPfcNotDrops)
{
    EventQueue eq;
    net::SwitchConfig cfg;
    cfg.forwardingLatency = 0;
    cfg.pfcXoffBytes = 8 * 1024;
    cfg.pfcXonBytes = 4 * 1024;
    net::Switch sw(eq, cfg);

    // Slow egress so the ingress accounting builds up.
    Link out(eq, "o", 0.5, 1.0);
    CollectorSink dst(eq);
    out.attachA(&dst);
    const int po = sw.addPort(&out.bToA());
    Link in(eq, "i", 40.0, 1.0);
    CollectorSink src(eq);
    in.attachA(&src);
    const int pi = sw.addPort(&in.bToA());
    in.attachB(sw.portSink(pi));
    sw.addHostRoute({5}, po);

    // Blast lossless traffic through the ingress.
    for (int i = 0; i < 64; ++i)
        in.aToB().send(makeUdp({1}, {5}, 1400, net::kTcLossless));
    eq.runUntil(2 * sim::kMillisecond);
    EXPECT_GT(sw.pfcFramesSent(), 0u);
    // The sender's channel must have been paused at some point.
    EXPECT_GT(in.aToB().pausesReceived(), 0u);
    eq.runAll();
    // All packets eventually arrive: lossless means no drops.
    EXPECT_EQ(dst.packets.size(), 64u);
    EXPECT_EQ(sw.packetsDropped(), 0u);
}

TEST(Topology, BuildsExpectedCounts)
{
    EventQueue eq;
    net::TopologyConfig cfg;
    cfg.hostsPerRack = 4;
    cfg.racksPerPod = 3;
    cfg.l1PerPod = 2;
    cfg.pods = 2;
    cfg.l2Count = 2;
    net::Topology topo(eq, cfg);
    EXPECT_EQ(topo.numHosts(), 4 * 3 * 2);
    EXPECT_EQ(topo.hostIndex(1, 2, 3), (1 * 3 + 2) * 4 + 3);
    EXPECT_EQ(topo.host(topo.hostIndex(1, 2, 3)).addr,
              net::Ipv4Addr::of(10, 1, 2, 4));
}

class TopologyDelivery : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(TopologyDelivery, HostToHostAcrossTiers)
{
    auto [src_idx, dst_idx] = GetParam();
    EventQueue eq;
    net::TopologyConfig cfg;
    cfg.hostsPerRack = 3;
    cfg.racksPerPod = 2;
    cfg.l1PerPod = 2;
    cfg.pods = 2;
    cfg.l2Count = 2;
    net::Topology topo(eq, cfg);

    std::vector<std::unique_ptr<CollectorSink>> sinks;
    for (int i = 0; i < topo.numHosts(); ++i) {
        sinks.push_back(std::make_unique<CollectorSink>(eq));
        topo.attachHostDevice(i, sinks.back().get());
    }
    auto pkt = makeUdp(topo.host(src_idx).addr, topo.host(dst_idx).addr,
                       800);
    topo.hostTx(src_idx).send(pkt);
    eq.runAll();
    ASSERT_EQ(sinks[dst_idx]->packets.size(), 1u)
        << "src=" << src_idx << " dst=" << dst_idx;
    for (int i = 0; i < topo.numHosts(); ++i) {
        if (i != dst_idx) {
            EXPECT_TRUE(sinks[i]->packets.empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, TopologyDelivery,
    ::testing::Values(std::pair{0, 1},   // same rack (L0)
                      std::pair{0, 4},   // cross-rack same pod (L1)
                      std::pair{0, 7},   // cross-pod (L2)
                      std::pair{11, 0},  // reverse direction across pods
                      std::pair{5, 5}));

TEST(TopologyDeliveryLatency, IncreasesWithTier)
{
    EventQueue eq;
    net::TopologyConfig cfg;
    cfg.hostsPerRack = 3;
    cfg.racksPerPod = 2;
    cfg.l1PerPod = 1;
    cfg.pods = 2;
    cfg.l2Count = 1;
    // Disable jitter for a deterministic comparison.
    cfg.l1Params.jitterMean = 0;
    cfg.l2Params.jitterMean = 0;
    net::Topology topo(eq, cfg);

    auto send_and_time = [&](int src, int dst) {
        CollectorSink sink(eq);
        topo.attachHostDevice(dst, &sink);
        const TimePs start = eq.now();
        topo.hostTx(src).send(
            makeUdp(topo.host(src).addr, topo.host(dst).addr, 200));
        eq.runAll();
        EXPECT_EQ(sink.packets.size(), 1u);
        return sink.times.empty() ? TimePs{0} : sink.times[0] - start;
    };

    const TimePs l0 = send_and_time(0, 1);
    const TimePs l1 = send_and_time(0, 4);
    const TimePs l2 = send_and_time(0, 8);
    EXPECT_LT(l0, l1);
    EXPECT_LT(l1, l2);
}

TEST(Nic, StampsSourceAddresses)
{
    EventQueue eq;
    Link link(eq, "l", 40.0, 1.0);
    net::Nic nic(eq, "nic0", net::MacAddr{0xAA}, net::Ipv4Addr{77});
    nic.setTxChannel(&link.aToB());
    link.attachA(&nic);
    CollectorSink far(eq);
    link.attachB(&far);

    auto pkt = net::makePacket();
    pkt->ipDst = {88};
    pkt->payloadBytes = 10;
    EXPECT_TRUE(nic.sendPacket(pkt));
    eq.runAll();
    ASSERT_EQ(far.packets.size(), 1u);
    EXPECT_EQ(far.packets[0]->ipSrc.value, 77u);
    EXPECT_EQ(far.packets[0]->ethSrc.value, 0xAAu);

    int received = 0;
    nic.setReceiveHandler([&](const PacketPtr &) { ++received; });
    link.bToA().send(makeUdp({88}, {77}, 10));
    eq.runAll();
    EXPECT_EQ(received, 1);
}

TEST(Packet, WireBytesIncludesOverheadsAndMinFrame)
{
    auto pkt = makeUdp({1}, {2}, 1);
    EXPECT_EQ(pkt->wireBytes(), 84u);  // padded to min frame + preamble/IFG
    auto big = makeUdp({1}, {2}, 1472);
    EXPECT_EQ(big->wireBytes(), 38u + 28u + 1472u);
}

TEST(Packet, FlowHashStableAndSpread)
{
    auto a = makeUdp({1}, {2}, 10);
    a->srcPort = 1000;
    auto b = makeUdp({1}, {2}, 10);
    b->srcPort = 1000;
    EXPECT_EQ(a->flowHash(), b->flowHash());
    b->srcPort = 1001;
    EXPECT_NE(a->flowHash(), b->flowHash());
}

TEST(PacketPool, RecyclesFreedBlocksThroughTheFreelist)
{
    // Warm the pool, then verify steady-state churn is served from the
    // freelist instead of the heap.
    { auto warm = net::makePacket(); }
    const auto before = net::packetPoolStats();
    for (int i = 0; i < 8; ++i) {
        auto pkt = net::makePacket();
        EXPECT_NE(pkt->id, 0u);
    }
    const auto after = net::packetPoolStats();
    EXPECT_GE(after.reusedAllocs, before.reusedAllocs + 8);
    EXPECT_EQ(after.freshAllocs, before.freshAllocs);
    EXPECT_GE(after.freeBlocks, 1u);
}

TEST(PacketPool, ReusedPacketsAreFreshlyConstructed)
{
    std::uint64_t firstId = 0;
    {
        auto pkt = net::makePacket();
        firstId = pkt->id;
        pkt->payloadBytes = 777;
        pkt->data.assign(64, 0xAB);
        pkt->ecnMarked = true;
    }
    auto pkt = net::makePacket();  // most likely the recycled block
    EXPECT_NE(pkt->id, firstId);
    EXPECT_EQ(pkt->payloadBytes, 0u);
    EXPECT_TRUE(pkt->data.empty());
    EXPECT_FALSE(pkt->ecnMarked);
}

}  // namespace
