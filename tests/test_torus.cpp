/**
 * @file
 * Catapult v1 torus baseline tests: dimension-order routing, wraparound,
 * latency calibration (1-hop ~1 us RTT, worst case ~7 us), failure
 * re-routing costs, and isolation under pathological failure patterns.
 */
#include <gtest/gtest.h>

#include "sim/time.hpp"
#include "torus/torus.hpp"

namespace {

using namespace ccsim;
using torus::TorusCoord;
using torus::TorusNetwork;

TEST(Torus, DimensionsAndNodeCount)
{
    TorusNetwork t;
    EXPECT_EQ(t.width(), 6);
    EXPECT_EQ(t.height(), 8);
    EXPECT_EQ(t.numNodes(), 48);
}

TEST(Torus, NeighborHopCountIsOne)
{
    TorusNetwork t;
    EXPECT_EQ(t.hopCount({0, 0}, {1, 0}), 1);
    EXPECT_EQ(t.hopCount({0, 0}, {0, 1}), 1);
    // Wraparound neighbors.
    EXPECT_EQ(t.hopCount({0, 0}, {5, 0}), 1);
    EXPECT_EQ(t.hopCount({0, 0}, {0, 7}), 1);
}

TEST(Torus, ManhattanDistanceWithWraparound)
{
    TorusNetwork t;
    EXPECT_EQ(t.hopCount({0, 0}, {3, 4}), 7);  // worst case in 6x8
    EXPECT_EQ(t.hopCount({0, 0}, {4, 6}), 2 + 2);  // wrap both dims
    EXPECT_EQ(t.hopCount({2, 3}, {2, 3}), 0);
}

TEST(Torus, WorstCaseEccentricityIsSeven)
{
    TorusNetwork t;
    EXPECT_EQ(t.eccentricity({0, 0}), 7);
}

TEST(Torus, OneHopRttAboutOneMicrosecond)
{
    TorusNetwork t;
    const auto rtt = t.roundTripLatency({0, 0}, {1, 0});
    ASSERT_TRUE(rtt.has_value());
    EXPECT_NEAR(sim::toMicros(*rtt), 1.0, 0.35);
}

TEST(Torus, WorstCaseRttAboutSevenMicroseconds)
{
    TorusNetwork t;
    const auto rtt = t.roundTripLatency({0, 0}, {3, 4});
    ASSERT_TRUE(rtt.has_value());
    EXPECT_NEAR(sim::toMicros(*rtt), 7.0, 0.7);
}

TEST(Torus, FailureForcesDetour)
{
    TorusNetwork t;
    // The DOR path 0,0 -> 2,0 passes through 1,0.
    const int clean = *t.hopCount({0, 0}, {2, 0});
    t.failNode({1, 0});
    const int rerouted = *t.hopCount({0, 0}, {2, 0});
    EXPECT_GT(rerouted, clean);
    // Latency rises correspondingly.
    t.repairNode({1, 0});
    EXPECT_EQ(*t.hopCount({0, 0}, {2, 0}), clean);
}

TEST(Torus, FailedEndpointsUnreachable)
{
    TorusNetwork t;
    t.failNode({3, 3});
    EXPECT_FALSE(t.route({0, 0}, {3, 3}).has_value());
    EXPECT_FALSE(t.route({3, 3}, {0, 0}).has_value());
    EXPECT_FALSE(t.roundTripLatency({0, 0}, {3, 3}).has_value());
}

TEST(Torus, ReachableNodesShrinkWithFailures)
{
    TorusNetwork t;
    EXPECT_EQ(t.reachableNodes({0, 0}), 48);
    t.failNode({5, 5});
    EXPECT_EQ(t.reachableNodes({0, 0}), 47);
}

TEST(Torus, FailureRingIsolatesNode)
{
    // The paper notes certain failure patterns isolate nodes: surround
    // (2,2) with failures and it becomes unreachable.
    TorusNetwork t;
    t.failNode({1, 2});
    t.failNode({3, 2});
    t.failNode({2, 1});
    t.failNode({2, 3});
    EXPECT_FALSE(t.route({0, 0}, {2, 2}).has_value());
    EXPECT_EQ(t.reachableNodes({0, 0}), 48 - 4 - 1);
}

TEST(Torus, PathIsContiguousNeighborChain)
{
    TorusNetwork t;
    t.failNode({1, 0});
    const auto path = t.route({0, 0}, {3, 0});
    ASSERT_TRUE(path.has_value());
    TorusCoord prev{0, 0};
    for (const auto &step : *path) {
        const int dx = std::min((step.x - prev.x + 6) % 6,
                                (prev.x - step.x + 6) % 6);
        const int dy = std::min((step.y - prev.y + 8) % 8,
                                (prev.y - step.y + 8) % 8);
        EXPECT_EQ(dx + dy, 1) << "non-adjacent hop";
        EXPECT_FALSE(t.isFailed(step));
        prev = step;
    }
    EXPECT_EQ(prev.x, 3);
    EXPECT_EQ(prev.y, 0);
}

/** Property sweep: routing works between every pair in a healthy torus. */
class TorusAllPairs : public ::testing::TestWithParam<int>
{
};

TEST_P(TorusAllPairs, EveryPairRoutable)
{
    TorusNetwork t;
    const int src_index = GetParam();
    const TorusCoord src{src_index % 6, src_index / 6};
    for (int x = 0; x < 6; ++x) {
        for (int y = 0; y < 8; ++y) {
            const auto hops = t.hopCount(src, {x, y});
            ASSERT_TRUE(hops.has_value());
            // DOR in a torus is shortest-path: check against Manhattan
            // distance with wraparound.
            const int dx = std::min((x - src.x + 6) % 6, (src.x - x + 6) % 6);
            const int dy = std::min((y - src.y + 8) % 8, (src.y - y + 8) % 8);
            EXPECT_EQ(*hops, dx + dy);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sources, TorusAllPairs,
                         ::testing::Values(0, 7, 13, 21, 29, 35, 42, 47));

}  // namespace
