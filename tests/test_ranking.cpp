/**
 * @file
 * Ranking feature tests: FFU finite-state machines against brute-force
 * references, DPF dynamic programming against exhaustive checks, model
 * scoring monotonicity, and the end-to-end software ranker.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "host/workload.hpp"
#include "roles/ranking/features.hpp"
#include "sim/random.hpp"

namespace {

using namespace ccsim;
using host::Document;
using host::Query;
using host::TermId;
using roles::DpfEngine;
using roles::FeatureVector;
using roles::FfuProgram;

Query
makeQuery(std::initializer_list<TermId> terms)
{
    Query q;
    q.id = 1;
    q.terms = terms;
    return q;
}

Document
makeDoc(std::initializer_list<TermId> terms)
{
    Document d;
    d.id = 1;
    d.terms = terms;
    return d;
}

TEST(Ffu, CountsTermOccurrences)
{
    const Query q = makeQuery({5, 9});
    const Document d = makeDoc({5, 1, 9, 5, 2, 9, 9});
    FeatureVector f{};
    FfuProgram::compile(q).run(d, f);
    const double norm = std::sqrt(7.0);
    EXPECT_FLOAT_EQ(f[roles::kFeatTermCount0 + 0],
                    static_cast<float>(2 / norm));  // term 5 twice
    EXPECT_FLOAT_EQ(f[roles::kFeatTermCount0 + 1],
                    static_cast<float>(3 / norm));  // term 9 thrice
}

TEST(Ffu, CountsAdjacentPairs)
{
    const Query q = makeQuery({1, 2, 3});
    // "1 2" appears twice, "2 3" once.
    const Document d = makeDoc({1, 2, 7, 1, 2, 3});
    FeatureVector f{};
    FfuProgram::compile(q).run(d, f);
    const double norm = std::sqrt(6.0);
    EXPECT_FLOAT_EQ(f[roles::kFeatAdjacency0 + 0],
                    static_cast<float>(2 / norm));
    EXPECT_FLOAT_EQ(f[roles::kFeatAdjacency0 + 1],
                    static_cast<float>(1 / norm));
}

TEST(Ffu, StreakCoverageFirstPos)
{
    const Query q = makeQuery({1, 2, 3});
    const Document d = makeDoc({9, 9, 1, 2, 9, 3, 2, 1, 9, 9});
    FeatureVector f{};
    FfuProgram::compile(q).run(d, f);
    EXPECT_FLOAT_EQ(f[roles::kFeatMaxStreak], 3.0f);  // "3 2 1"
    EXPECT_FLOAT_EQ(f[roles::kFeatUniqueCoverage], 1.0f);
    EXPECT_FLOAT_EQ(f[roles::kFeatFirstPosNorm], 0.2f);  // index 2 of 10
}

TEST(Ffu, NoMatchesGivesZeroFeatures)
{
    const Query q = makeQuery({100, 200});
    const Document d = makeDoc({1, 2, 3, 4});
    FeatureVector f{};
    FfuProgram::compile(q).run(d, f);
    EXPECT_FLOAT_EQ(f[roles::kFeatTermCount0], 0.0f);
    EXPECT_FLOAT_EQ(f[roles::kFeatMaxStreak], 0.0f);
    EXPECT_FLOAT_EQ(f[roles::kFeatUniqueCoverage], 0.0f);
    EXPECT_FLOAT_EQ(f[roles::kFeatFirstPosNorm], 1.0f);  // sentinel
}

TEST(Ffu, TruncatesToMaxQueryTerms)
{
    Query q;
    for (TermId t = 0; t < 20; ++t)
        q.terms.push_back(t);
    const auto prog = FfuProgram::compile(q);
    EXPECT_EQ(prog.queryTerms(), roles::kMaxQueryTerms);
}

/** Brute-force cross-check of the FSM machines on random inputs. */
TEST(Ffu, MatchesBruteForceOnRandomDocuments)
{
    sim::Rng rng(4242);
    for (int trial = 0; trial < 100; ++trial) {
        Query q;
        const int qlen = 1 + static_cast<int>(rng.uniformInt(
                                 std::uint64_t{roles::kMaxQueryTerms}));
        for (int i = 0; i < qlen; ++i)
            q.terms.push_back(static_cast<TermId>(rng.uniformInt(
                std::uint64_t{6})));  // small vocab: many collisions
        Document d;
        const int dlen = 1 + static_cast<int>(
                                 rng.uniformInt(std::uint64_t{80}));
        for (int i = 0; i < dlen; ++i)
            d.terms.push_back(static_cast<TermId>(
                rng.uniformInt(std::uint64_t{6})));

        const auto prog = FfuProgram::compile(q);
        FeatureVector f{};
        prog.run(d, f);

        const double norm = std::sqrt(static_cast<double>(dlen));
        // Reference term counts: FFU counts symbol matches where a
        // symbol is the FIRST query position with that term id.
        for (int k = 0; k < prog.queryTerms(); ++k) {
            // Is k the first occurrence of this term in the query?
            bool first = true;
            for (int j = 0; j < k; ++j)
                first = first && q.terms[j] != q.terms[k];
            int count = 0;
            for (TermId t : d.terms)
                count += (t == q.terms[k]) ? 1 : 0;
            const float expect =
                first ? static_cast<float>(count / norm) : 0.0f;
            ASSERT_NEAR(f[roles::kFeatTermCount0 + k], expect, 1e-5)
                << "trial " << trial << " term " << k;
        }
    }
}

TEST(Dpf, AlignmentScoreExactMatch)
{
    // Perfect phrase: every query term matches => 2 points each.
    EXPECT_EQ(DpfEngine::alignmentScore({1, 2, 3}, {9, 1, 2, 3, 9}), 6);
    // No overlap at all.
    EXPECT_EQ(DpfEngine::alignmentScore({1, 2}, {7, 8, 9}), 0);
    // Gap: "1 x 2" vs query "1 2": 2 + 2 - 1 = 3.
    EXPECT_EQ(DpfEngine::alignmentScore({1, 2}, {1, 7, 2}), 3);
    // Empty inputs.
    EXPECT_EQ(DpfEngine::alignmentScore({}, {1, 2}), 0);
}

TEST(Dpf, MinCoverWindow)
{
    EXPECT_EQ(DpfEngine::minCoverWindow({1, 2}, {1, 9, 9, 2}), 4);
    EXPECT_EQ(DpfEngine::minCoverWindow({1, 2}, {1, 9, 1, 2}), 2);
    EXPECT_EQ(DpfEngine::minCoverWindow({1, 2}, {1, 1, 1}), 0);  // no cover
    EXPECT_EQ(DpfEngine::minCoverWindow({3}, {1, 3, 5}), 1);
    // Duplicate query terms need only one instance.
    EXPECT_EQ(DpfEngine::minCoverWindow({1, 1, 2}, {2, 1}), 2);
}

TEST(Dpf, PhraseCount)
{
    EXPECT_EQ(DpfEngine::phraseCount({1, 2}, {1, 2, 1, 2, 1}), 2);
    EXPECT_EQ(DpfEngine::phraseCount({1, 2}, {2, 1}), 0);
    EXPECT_EQ(DpfEngine::phraseCount({1}, {1, 1, 1}), 3);
    EXPECT_EQ(DpfEngine::phraseCount({1, 2, 3}, {1, 2}), 0);
}

TEST(Dpf, PlantedPhraseScoresExactlyTwiceQueryLength)
{
    // Invariant check: a document containing the query verbatim (with
    // disjoint junk around it) scores exactly match_bonus * |q| = 2|q|,
    // since +2 per matched term is the DP's per-column maximum.
    sim::Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<TermId> q;
        const int qlen =
            1 + static_cast<int>(rng.uniformInt(std::uint64_t{4}));
        for (int i = 0; i < qlen; ++i)
            q.push_back(static_cast<TermId>(
                rng.uniformInt(std::uint64_t{5})));
        // Document = junk + query + junk: score must be >= 2*qlen - and
        // since match=+2 is the max per column, exactly 2*qlen.
        std::vector<TermId> d;
        for (int i = 0; i < 5; ++i)
            d.push_back(static_cast<TermId>(
                10 + rng.uniformInt(std::uint64_t{5})));
        d.insert(d.end(), q.begin(), q.end());
        for (int i = 0; i < 5; ++i)
            d.push_back(static_cast<TermId>(
                10 + rng.uniformInt(std::uint64_t{5})));
        EXPECT_EQ(DpfEngine::alignmentScore(q, d), 2 * qlen);
    }
}

TEST(RankingModel, PlantedDocumentOutranksJunk)
{
    host::CorpusGenerator corpus(5000, 1.0, 77);
    roles::RankingModel model;
    int wins = 0;
    int beats_median = 0;
    const int kTrials = 30;
    for (int trial = 0; trial < kTrials; ++trial) {
        const Query q = corpus.makeQuery(4);
        std::vector<Document> docs;
        docs.push_back(corpus.makeCandidateDocument(q, 120));  // relevant
        for (int i = 0; i < 10; ++i)
            docs.push_back(corpus.makeDocument(120));  // junk
        const auto ranked = roles::rankDocuments(q, docs, model);
        wins += (ranked.front().docId == docs.front().id) ? 1 : 0;
        // Rank position of the planted document.
        for (std::size_t pos = 0; pos < ranked.size(); ++pos) {
            if (ranked[pos].docId == docs.front().id) {
                beats_median += pos < ranked.size() / 2 ? 1 : 0;
                break;
            }
        }
    }
    // Zipf-head query terms also occur in junk, so top-1 is not
    // guaranteed — but the planted candidate must usually win and nearly
    // always land in the top half.
    EXPECT_GE(wins, kTrials / 2);
    EXPECT_GE(beats_median, kTrials * 9 / 10);
}

TEST(RankingModel, ScoreIsInUnitInterval)
{
    roles::RankingModel model;
    FeatureVector zero{};
    FeatureVector big{};
    big.fill(10.0f);
    EXPECT_GT(model.score(zero), 0.0);
    EXPECT_LT(model.score(zero), 1.0);
    EXPECT_GT(model.score(big), model.score(zero));
    EXPECT_LE(model.score(big), 1.0);
}

TEST(RankDocuments, StableDeterministicOrder)
{
    host::CorpusGenerator corpus(1000, 1.0, 3);
    const Query q = corpus.makeQuery(3);
    std::vector<Document> docs;
    for (int i = 0; i < 25; ++i)
        docs.push_back(corpus.makeCandidateDocument(q, 60));
    roles::RankingModel model;
    const auto r1 = roles::rankDocuments(q, docs, model);
    const auto r2 = roles::rankDocuments(q, docs, model);
    ASSERT_EQ(r1.size(), r2.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].docId, r2[i].docId);
        EXPECT_TRUE(i == 0 || r1[i - 1].score >= r1[i].score);
    }
}

TEST(Corpus, ZipfSkewAndDeterminism)
{
    host::CorpusGenerator a(1000, 1.0, 5), b(1000, 1.0, 5);
    std::map<TermId, int> freq;
    for (int i = 0; i < 200; ++i) {
        const Document da = a.makeDocument(50);
        const Document db = b.makeDocument(50);
        ASSERT_EQ(da.terms, db.terms);  // deterministic
        for (TermId t : da.terms)
            ++freq[t];
    }
    // Zipf: low term ids dominate.
    int head = 0, total = 0;
    for (const auto &[term, count] : freq) {
        total += count;
        if (term < 10)
            head += count;
    }
    EXPECT_GT(static_cast<double>(head) / total, 0.25);
}

TEST(Corpus, CandidateDocumentContainsQueryTerms)
{
    host::CorpusGenerator corpus(5000, 1.0, 13);
    for (int i = 0; i < 20; ++i) {
        const Query q = corpus.makeQuery(4);
        const Document d = corpus.makeCandidateDocument(q, 100);
        for (TermId t : q.terms) {
            EXPECT_NE(std::find(d.terms.begin(), d.terms.end(), t),
                      d.terms.end());
        }
    }
}

}  // namespace
