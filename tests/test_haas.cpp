/**
 * @file
 * HaaS unit tests: lease lifecycle, constraints, pool accounting,
 * failure reporting and SM failover, FM configuration, and the
 * HealthMonitor's per-source evidence idempotence.
 */
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/cloud.hpp"
#include "haas/haas.hpp"
#include "haas/health_monitor.hpp"
#include "roles/dnn_role.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using haas::FpgaManager;
using haas::LeaseConstraints;
using haas::ResourceManager;
using haas::ServiceManager;
using sim::EventQueue;

/** A trivial role for configuration tests. */
struct StubRole : fpga::Role {
    std::string name() const override { return "stub"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int) override {}
    void onMessage(const router::ErMessagePtr &) override {}
};

struct Pool {
    EventQueue eq;
    ResourceManager rm{eq};
    std::vector<std::unique_ptr<FpgaManager>> fms;
    std::vector<std::unique_ptr<StubRole>> roles;

    explicit Pool(int nodes, int pods = 1)
    {
        for (int i = 0; i < nodes; ++i) {
            // Shell-less FMs: configuration calls are exercised in the
            // cloud integration tests; here we focus on RM bookkeeping.
            fms.push_back(std::make_unique<FpgaManager>(eq, nullptr, i));
            rm.registerNode(i, fms.back().get(), i % pods);
        }
    }

    fpga::Role *makeRole()
    {
        roles.push_back(std::make_unique<StubRole>());
        return roles.back().get();
    }
};

TEST(ResourceManager, AcquireAndRelease)
{
    Pool pool(8);
    EXPECT_EQ(pool.rm.freeCount(), 8);
    auto lease = pool.rm.acquire("svc", 3);
    ASSERT_TRUE(lease.has_value());
    EXPECT_EQ(lease->hosts.size(), 3u);
    EXPECT_EQ(pool.rm.freeCount(), 5);
    EXPECT_EQ(pool.rm.allocatedCount(), 3);
    pool.rm.release(lease->id);
    EXPECT_EQ(pool.rm.freeCount(), 8);
}

TEST(ResourceManager, ExhaustionReturnsNullopt)
{
    Pool pool(4);
    auto a = pool.rm.acquire("a", 3);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(pool.rm.acquire("b", 2).has_value());
    EXPECT_TRUE(pool.rm.acquire("b", 1).has_value());
}

TEST(ResourceManager, LeasesDoNotOverlap)
{
    Pool pool(10);
    std::set<int> seen;
    for (int i = 0; i < 5; ++i) {
        auto lease = pool.rm.acquire("svc", 2);
        ASSERT_TRUE(lease.has_value());
        for (int host : lease->hosts)
            EXPECT_TRUE(seen.insert(host).second)
                << "host leased twice: " << host;
    }
}

TEST(ResourceManager, PodConstraintHonored)
{
    Pool pool(12, 3);  // pods 0,1,2 round-robin
    LeaseConstraints c;
    c.requirePod = 1;
    auto lease = pool.rm.acquire("svc", 4);
    (void)lease;
    auto pod_lease = pool.rm.acquire("svc", 2, c);
    ASSERT_TRUE(pod_lease.has_value());
    for (int host : pod_lease->hosts)
        EXPECT_EQ(host % 3, 1);
    // Only 4 nodes exist in pod 1; asking for more must fail.
    EXPECT_FALSE(pool.rm.acquire("svc", 4, c).has_value());
}

TEST(ResourceManager, FailureRemovesFromPoolAndNotifies)
{
    Pool pool(4);
    int failed_host = -1;
    std::uint64_t failed_lease = 0;
    pool.rm.subscribeFailures([&](int host, std::uint64_t lease) {
        failed_host = host;
        failed_lease = lease;
    });
    auto lease = pool.rm.acquire("svc", 2);
    ASSERT_TRUE(lease.has_value());
    const int victim = lease->hosts[0];
    pool.rm.reportFailure(victim);
    EXPECT_EQ(failed_host, victim);
    EXPECT_EQ(failed_lease, lease->id);
    EXPECT_EQ(pool.rm.failedCount(), 1);
    // Failure of an unleased node does not notify.
    failed_host = -1;
    const int idle = 3;
    pool.rm.reportFailure(idle);
    EXPECT_EQ(failed_host, -1);
    EXPECT_EQ(pool.rm.failedCount(), 2);
}

TEST(ResourceManager, RepairReturnsNodeToPool)
{
    Pool pool(2);
    pool.rm.reportFailure(0);
    EXPECT_EQ(pool.rm.freeCount(), 1);
    pool.rm.repair(0);
    EXPECT_EQ(pool.rm.freeCount(), 2);
    EXPECT_EQ(pool.rm.failedCount(), 0);
}

TEST(ResourceManager, ReportFailureIsIdempotent)
{
    // Fault injection and LTL-timeout detection can both report the same
    // dead node; only the first report may have any effect.
    Pool pool(4);
    int notifications = 0;
    pool.rm.subscribeFailures(
        [&](int, std::uint64_t) { ++notifications; });
    auto lease = pool.rm.acquire("svc", 1);
    ASSERT_TRUE(lease.has_value());
    const int victim = lease->hosts[0];

    pool.rm.reportFailure(victim);
    pool.rm.reportFailure(victim);
    pool.rm.reportFailure(victim);
    EXPECT_EQ(notifications, 1);
    EXPECT_EQ(pool.rm.failedCount(), 1);
    EXPECT_EQ(pool.rm.failuresReported(), 1u);

    // Repairing a healthy node is equally a no-op.
    pool.rm.repair(victim);
    pool.rm.repair(victim);
    EXPECT_EQ(pool.rm.failedCount(), 0);
    EXPECT_EQ(pool.rm.repairsApplied(), 1u);
    EXPECT_EQ(pool.rm.freeCount(), 4);
}

TEST(ResourceManager, RepairedNodeSatisfiesPodConstraintAgain)
{
    Pool pool(4, 2);  // hosts 1 and 3 land in pod 1
    LeaseConstraints c;
    c.requirePod = 1;
    auto lease = pool.rm.acquire("svc", 2, c);
    ASSERT_TRUE(lease.has_value());

    pool.rm.reportFailure(1);
    EXPECT_FALSE(pool.rm.acquire("svc", 1, c).has_value());  // pod empty

    // Repair makes the node eligible for pod-constrained leases again.
    pool.rm.repair(1);
    auto again = pool.rm.acquire("svc", 1, c);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->hosts.front(), 1);
}

TEST(ResourceManager, MultipleSubscribersFireInSubscriptionOrder)
{
    // Several control-plane components (Service Managers, monitors,
    // loggers) subscribe independently; each event reaches all of them
    // in the order they subscribed.
    Pool pool(4);
    std::vector<std::string> calls;
    pool.rm.subscribeFailures(
        [&](int host, std::uint64_t) {
            calls.push_back("A.fail." + std::to_string(host));
        });
    pool.rm.subscribeFailures(
        [&](int host, std::uint64_t) {
            calls.push_back("B.fail." + std::to_string(host));
        });
    pool.rm.subscribeRepairs([&](int host) {
        calls.push_back("A.repair." + std::to_string(host));
    });
    pool.rm.subscribeRepairs([&](int host) {
        calls.push_back("B.repair." + std::to_string(host));
    });

    auto lease = pool.rm.acquire("svc", 1);
    ASSERT_TRUE(lease.has_value());
    const int victim = lease->hosts[0];
    pool.rm.reportFailure(victim);
    pool.rm.repair(victim);

    const std::vector<std::string> expected = {
        "A.fail." + std::to_string(victim),
        "B.fail." + std::to_string(victim),
        "A.repair." + std::to_string(victim),
        "B.repair." + std::to_string(victim),
    };
    EXPECT_EQ(calls, expected);
}

TEST(FpgaManager, StatusReflectsHealth)
{
    EventQueue eq;
    FpgaManager fm(eq, nullptr, 7);
    EXPECT_TRUE(fm.status().healthy);
    EXPECT_FALSE(fm.status().hasRole);
    fm.markUnhealthy();
    EXPECT_FALSE(fm.status().healthy);
    // Unhealthy FMs refuse configuration.
    StubRole role;
    EXPECT_EQ(fm.configureRole(&role), -1);
    fm.markHealthy();
    // Null shell also refuses (no fabric to configure).
    EXPECT_EQ(fm.configureRole(&role), -1);
}

TEST(ServiceManager, RoundRobinLoadBalancing)
{
    Pool pool(6);
    // Use a role factory but a null-shell pool: deploy() would fail on
    // configure, so drive pickInstance() on a hand-rolled instance list
    // via deploy of zero instances plus direct checks.
    ServiceManager sm(pool.eq, pool.rm, "svc",
                      [&](int) { return pool.makeRole(); });
    EXPECT_EQ(sm.pickInstance(), -1);  // nothing deployed
}

TEST(ServiceManager, PickInstanceMatchesLegacySequence)
{
    // pickInstance() is now a shim over serving::RoundRobinBalancer.
    // Replay the pre-serving implementation — `hosts[rrNext %
    // hosts.size()]; ++rrNext;` with a free-running counter — side by
    // side through deploys, scale-downs, scale-ups, and a failover, and
    // require bit-identical pick sequences throughout.
    EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    cfg.createNics = false;
    core::ConfigurableCloud cloud(eq, cfg);

    std::vector<std::unique_ptr<roles::DnnRole>> role_storage;
    ServiceManager sm(eq, cloud.resourceManager(), "dnn",
                      [&](int) -> fpga::Role * {
                          role_storage.push_back(
                              std::make_unique<roles::DnnRole>(eq));
                          return role_storage.back().get();
                      });

    std::size_t legacy_next = 0;
    auto legacy_pick = [&]() -> int {
        const auto &hosts = sm.instances();
        if (hosts.empty())
            return -1;
        const int host = hosts[legacy_next % hosts.size()];
        ++legacy_next;
        return host;
    };
    auto expect_same_picks = [&](int picks) {
        for (int i = 0; i < picks; ++i) {
            const int expected = legacy_pick();
            EXPECT_EQ(sm.pickInstance(), expected)
                << "diverged at pick " << i << " with "
                << sm.instances().size() << " instances";
        }
    };

    ASSERT_TRUE(sm.deploy(3));
    expect_same_picks(7);  // not a multiple of 3: counter mid-cycle
    ASSERT_TRUE(sm.scaleTo(2));
    expect_same_picks(5);
    ASSERT_TRUE(sm.scaleTo(5));
    expect_same_picks(9);
    // Failover replaces a host mid-sequence (membership change without
    // a size change).
    const int victim = sm.instances().front();
    cloud.resourceManager().reportFailure(victim);
    ASSERT_TRUE(sm.handleFailure(victim));
    expect_same_picks(11);
}

TEST(HealthMonitor, EvidenceIdempotentPerSource)
{
    Pool pool(4);
    haas::HealthMonitorConfig cfg;
    cfg.suspicionThreshold = 3.0;
    haas::HealthMonitor hm(pool.eq, pool.rm, cfg);

    // The same source re-reporting adds no further suspicion: a serving
    // detector that re-ejects a grey node every 30 ms must not reach the
    // reporting threshold on its own.
    hm.reportEvidence(1, "serving.rank", 1.0);
    hm.reportEvidence(1, "serving.rank", 1.0);
    hm.reportEvidence(1, "serving.rank", 1.0);
    hm.reportEvidence(1, "serving.rank", 1.0);
    EXPECT_DOUBLE_EQ(hm.suspicion(1), 1.0);
    EXPECT_EQ(hm.evidenceReports(), 1u);
    EXPECT_EQ(pool.rm.failedCount(), 0);

    // Distinct sources corroborate: each credits once.
    hm.reportEvidence(1, "serving.crypto", 1.0);
    EXPECT_DOUBLE_EQ(hm.suspicion(1), 2.0);
    hm.reportEvidence(1, "serving.dnn", 1.0);
    // Third source crossed the threshold: reported to the RM once.
    EXPECT_EQ(pool.rm.failedCount(), 1);
    EXPECT_EQ(hm.detections(), 1u);

    // While reported, even a fresh source cannot double-report.
    hm.reportEvidence(1, "serving.other", 5.0);
    EXPECT_EQ(pool.rm.failedCount(), 1);
    EXPECT_EQ(hm.detections(), 1u);

    // Evidence against unregistered hosts is ignored.
    hm.reportEvidence(99, "serving.rank", 1.0);
    EXPECT_DOUBLE_EQ(hm.suspicion(99), 0.0);
}

TEST(HealthMonitor, EvidenceLatchClearsOnHealthyHeartbeat)
{
    Pool pool(2);
    haas::HealthMonitorConfig cfg;
    cfg.suspicionThreshold = 3.0;
    haas::HealthMonitor hm(pool.eq, pool.rm, cfg);
    hm.setProbe([](int) { return true; });
    hm.start();

    hm.reportEvidence(0, "serving.rank", 1.0);
    EXPECT_DOUBLE_EQ(hm.suspicion(0), 1.0);

    // A reachable heartbeat ends the episode: suspicion resets and the
    // source may count again when the node degrades anew.
    pool.eq.runFor(cfg.heartbeatPeriod + cfg.heartbeatRtt + 1);
    hm.stop();
    EXPECT_DOUBLE_EQ(hm.suspicion(0), 0.0);
    hm.reportEvidence(0, "serving.rank", 1.0);
    EXPECT_DOUBLE_EQ(hm.suspicion(0), 1.0);
    EXPECT_EQ(hm.evidenceReports(), 2u);
}

}  // namespace
