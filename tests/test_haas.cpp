/**
 * @file
 * HaaS unit tests: lease lifecycle, constraints, pool accounting,
 * failure reporting and SM failover, and FM configuration.
 */
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "haas/haas.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using haas::FpgaManager;
using haas::LeaseConstraints;
using haas::ResourceManager;
using haas::ServiceManager;
using sim::EventQueue;

/** A trivial role for configuration tests. */
struct StubRole : fpga::Role {
    std::string name() const override { return "stub"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int) override {}
    void onMessage(const router::ErMessagePtr &) override {}
};

struct Pool {
    EventQueue eq;
    ResourceManager rm{eq};
    std::vector<std::unique_ptr<FpgaManager>> fms;
    std::vector<std::unique_ptr<StubRole>> roles;

    explicit Pool(int nodes, int pods = 1)
    {
        for (int i = 0; i < nodes; ++i) {
            // Shell-less FMs: configuration calls are exercised in the
            // cloud integration tests; here we focus on RM bookkeeping.
            fms.push_back(std::make_unique<FpgaManager>(eq, nullptr, i));
            rm.registerNode(i, fms.back().get(), i % pods);
        }
    }

    fpga::Role *makeRole()
    {
        roles.push_back(std::make_unique<StubRole>());
        return roles.back().get();
    }
};

TEST(ResourceManager, AcquireAndRelease)
{
    Pool pool(8);
    EXPECT_EQ(pool.rm.freeCount(), 8);
    auto lease = pool.rm.acquire("svc", 3);
    ASSERT_TRUE(lease.has_value());
    EXPECT_EQ(lease->hosts.size(), 3u);
    EXPECT_EQ(pool.rm.freeCount(), 5);
    EXPECT_EQ(pool.rm.allocatedCount(), 3);
    pool.rm.release(lease->id);
    EXPECT_EQ(pool.rm.freeCount(), 8);
}

TEST(ResourceManager, ExhaustionReturnsNullopt)
{
    Pool pool(4);
    auto a = pool.rm.acquire("a", 3);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(pool.rm.acquire("b", 2).has_value());
    EXPECT_TRUE(pool.rm.acquire("b", 1).has_value());
}

TEST(ResourceManager, LeasesDoNotOverlap)
{
    Pool pool(10);
    std::set<int> seen;
    for (int i = 0; i < 5; ++i) {
        auto lease = pool.rm.acquire("svc", 2);
        ASSERT_TRUE(lease.has_value());
        for (int host : lease->hosts)
            EXPECT_TRUE(seen.insert(host).second)
                << "host leased twice: " << host;
    }
}

TEST(ResourceManager, PodConstraintHonored)
{
    Pool pool(12, 3);  // pods 0,1,2 round-robin
    LeaseConstraints c;
    c.requirePod = 1;
    auto lease = pool.rm.acquire("svc", 4);
    (void)lease;
    auto pod_lease = pool.rm.acquire("svc", 2, c);
    ASSERT_TRUE(pod_lease.has_value());
    for (int host : pod_lease->hosts)
        EXPECT_EQ(host % 3, 1);
    // Only 4 nodes exist in pod 1; asking for more must fail.
    EXPECT_FALSE(pool.rm.acquire("svc", 4, c).has_value());
}

TEST(ResourceManager, FailureRemovesFromPoolAndNotifies)
{
    Pool pool(4);
    int failed_host = -1;
    std::uint64_t failed_lease = 0;
    pool.rm.subscribeFailures([&](int host, std::uint64_t lease) {
        failed_host = host;
        failed_lease = lease;
    });
    auto lease = pool.rm.acquire("svc", 2);
    ASSERT_TRUE(lease.has_value());
    const int victim = lease->hosts[0];
    pool.rm.reportFailure(victim);
    EXPECT_EQ(failed_host, victim);
    EXPECT_EQ(failed_lease, lease->id);
    EXPECT_EQ(pool.rm.failedCount(), 1);
    // Failure of an unleased node does not notify.
    failed_host = -1;
    const int idle = 3;
    pool.rm.reportFailure(idle);
    EXPECT_EQ(failed_host, -1);
    EXPECT_EQ(pool.rm.failedCount(), 2);
}

TEST(ResourceManager, RepairReturnsNodeToPool)
{
    Pool pool(2);
    pool.rm.reportFailure(0);
    EXPECT_EQ(pool.rm.freeCount(), 1);
    pool.rm.repair(0);
    EXPECT_EQ(pool.rm.freeCount(), 2);
    EXPECT_EQ(pool.rm.failedCount(), 0);
}

TEST(ResourceManager, ReportFailureIsIdempotent)
{
    // Fault injection and LTL-timeout detection can both report the same
    // dead node; only the first report may have any effect.
    Pool pool(4);
    int notifications = 0;
    pool.rm.subscribeFailures(
        [&](int, std::uint64_t) { ++notifications; });
    auto lease = pool.rm.acquire("svc", 1);
    ASSERT_TRUE(lease.has_value());
    const int victim = lease->hosts[0];

    pool.rm.reportFailure(victim);
    pool.rm.reportFailure(victim);
    pool.rm.reportFailure(victim);
    EXPECT_EQ(notifications, 1);
    EXPECT_EQ(pool.rm.failedCount(), 1);
    EXPECT_EQ(pool.rm.failuresReported(), 1u);

    // Repairing a healthy node is equally a no-op.
    pool.rm.repair(victim);
    pool.rm.repair(victim);
    EXPECT_EQ(pool.rm.failedCount(), 0);
    EXPECT_EQ(pool.rm.repairsApplied(), 1u);
    EXPECT_EQ(pool.rm.freeCount(), 4);
}

TEST(ResourceManager, RepairedNodeSatisfiesPodConstraintAgain)
{
    Pool pool(4, 2);  // hosts 1 and 3 land in pod 1
    LeaseConstraints c;
    c.requirePod = 1;
    auto lease = pool.rm.acquire("svc", 2, c);
    ASSERT_TRUE(lease.has_value());

    pool.rm.reportFailure(1);
    EXPECT_FALSE(pool.rm.acquire("svc", 1, c).has_value());  // pod empty

    // Repair makes the node eligible for pod-constrained leases again.
    pool.rm.repair(1);
    auto again = pool.rm.acquire("svc", 1, c);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->hosts.front(), 1);
}

TEST(ResourceManager, MultipleSubscribersFireInSubscriptionOrder)
{
    // Several control-plane components (Service Managers, monitors,
    // loggers) subscribe independently; each event reaches all of them
    // in the order they subscribed.
    Pool pool(4);
    std::vector<std::string> calls;
    pool.rm.subscribeFailures(
        [&](int host, std::uint64_t) {
            calls.push_back("A.fail." + std::to_string(host));
        });
    pool.rm.subscribeFailures(
        [&](int host, std::uint64_t) {
            calls.push_back("B.fail." + std::to_string(host));
        });
    pool.rm.subscribeRepairs([&](int host) {
        calls.push_back("A.repair." + std::to_string(host));
    });
    pool.rm.subscribeRepairs([&](int host) {
        calls.push_back("B.repair." + std::to_string(host));
    });

    auto lease = pool.rm.acquire("svc", 1);
    ASSERT_TRUE(lease.has_value());
    const int victim = lease->hosts[0];
    pool.rm.reportFailure(victim);
    pool.rm.repair(victim);

    const std::vector<std::string> expected = {
        "A.fail." + std::to_string(victim),
        "B.fail." + std::to_string(victim),
        "A.repair." + std::to_string(victim),
        "B.repair." + std::to_string(victim),
    };
    EXPECT_EQ(calls, expected);
}

TEST(FpgaManager, StatusReflectsHealth)
{
    EventQueue eq;
    FpgaManager fm(eq, nullptr, 7);
    EXPECT_TRUE(fm.status().healthy);
    EXPECT_FALSE(fm.status().hasRole);
    fm.markUnhealthy();
    EXPECT_FALSE(fm.status().healthy);
    // Unhealthy FMs refuse configuration.
    StubRole role;
    EXPECT_EQ(fm.configureRole(&role), -1);
    fm.markHealthy();
    // Null shell also refuses (no fabric to configure).
    EXPECT_EQ(fm.configureRole(&role), -1);
}

TEST(ServiceManager, RoundRobinLoadBalancing)
{
    Pool pool(6);
    // Use a role factory but a null-shell pool: deploy() would fail on
    // configure, so drive pickInstance() on a hand-rolled instance list
    // via deploy of zero instances plus direct checks.
    ServiceManager sm(pool.eq, pool.rm, "svc",
                      [&](int) { return pool.makeRole(); });
    EXPECT_EQ(sm.pickInstance(), -1);  // nothing deployed
}

}  // namespace
