/**
 * @file
 * Live fault injection (ccsim::fault) and the RAII LtlChannel handle:
 * scripted link flaps recover every in-flight LTL message, FPGA hard
 * failures drive exactly one HaaS failover, same-seed fault schedules
 * produce byte-identical metric snapshots, closed handles free their
 * connection-table entries, and bad configurations die loudly.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cloud.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "roles/dnn_role.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace ccsim;
using fault::FaultConfig;
using fault::FaultInjector;
using sim::EventQueue;

struct NullRole : fpga::Role {
    int port = -1;
    int received = 0;
    std::string name() const override { return "null"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &msg) override
    {
        if (msg->srcEndpoint == fpga::kErPortLtl)
            ++received;
    }
};

core::CloudConfig
smallCloud()
{
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    cfg.createNics = false;
    cfg.shellTemplate.ltl.maxConnections = 16;
    return cfg;
}

// ---------------------------------------------------------------------
// Tentpole: faults are survivable.
// ---------------------------------------------------------------------

TEST(FaultInjection, ScriptedLinkFlapRecoversAllInFlightMessages)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloud());
    NullRole sink;
    ASSERT_GE(cloud.shell(5).addRole(&sink), 0);
    auto ch = cloud.openLtl(0, 5, sink.port);

    // Cut the sender's TOR cable for 200 us in the middle of a 2 ms
    // message train: well inside LTL's 16 x 50 us retry budget, so the
    // flap must be invisible at the message level.
    FaultInjector inj(eq, cloud,
                      FaultConfig{}.withHostLinkFlap(
                          sim::fromMicros(500), 0, sim::fromMicros(200)));
    inj.arm();

    const int kMessages = 100;
    auto *engine = cloud.shell(0).ltlEngine();
    for (int i = 0; i < kMessages; ++i) {
        eq.scheduleAfter(i * 20 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 256);
                         });
    }
    eq.runFor(sim::fromMillis(10));

    EXPECT_EQ(sink.received, kMessages);
    EXPECT_GT(engine->framesRetransmitted(), 0u);  // the flap bit frames
    EXPECT_EQ(engine->framesAbandoned(), 0u);
    // Ledger invariant: when drained, every frame is accounted for.
    EXPECT_EQ(engine->framesAcked() + engine->framesAbandoned(),
              engine->framesSent());
    EXPECT_EQ(engine->framesInFlight(), 0u);

    EXPECT_EQ(inj.injected(), 1u);
    EXPECT_EQ(inj.recovered(), 1u);
    EXPECT_FALSE(inj.nodeDown(0));
    EXPECT_EQ(inj.downtime(0), sim::fromMicros(200));
    EXPECT_GT(cloud.topology().hostLink(0).aToB().faultDrops() +
                  cloud.topology().hostLink(0).bToA().faultDrops(),
              0u);
}

TEST(FaultInjection, CorruptionBurstIsRepairedByRetransmission)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloud());
    NullRole sink;
    ASSERT_GE(cloud.shell(1).addRole(&sink), 0);
    auto ch = cloud.openLtl(0, 1, sink.port);

    FaultInjector inj(eq, cloud, FaultConfig{}.withSeed(7));
    eq.schedule(sim::fromMicros(100), [&] {
        inj.corruptionBurst(0, 0.5, sim::fromMicros(800));
    });

    auto *engine = cloud.shell(0).ltlEngine();
    const int kMessages = 40;
    for (int i = 0; i < kMessages; ++i) {
        eq.scheduleAfter(i * 20 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 1024);
                         });
    }
    eq.runFor(sim::fromMillis(20));

    EXPECT_EQ(sink.received, kMessages);  // CRC drops all recovered
    EXPECT_GT(engine->framesRetransmitted(), 0u);
    EXPECT_EQ(engine->framesAcked() + engine->framesAbandoned(),
              engine->framesSent());
    // The hook is gone after the burst: no further fault drops.
    const auto drops = cloud.topology().hostLink(0).aToB().faultDrops();
    EXPECT_GT(drops, 0u);
    ch.send(512);
    eq.runFor(sim::fromMillis(1));
    EXPECT_EQ(cloud.topology().hostLink(0).aToB().faultDrops(), drops);
}

TEST(FaultInjection, FpgaHardFailureCausesExactlyOneFailover)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloud());

    std::vector<std::unique_ptr<roles::DnnRole>> role_storage;
    haas::ServiceManager sm(eq, cloud.resourceManager(), "dnn",
                            [&](int) -> fpga::Role * {
                                role_storage.push_back(
                                    std::make_unique<roles::DnnRole>(eq));
                                return role_storage.back().get();
                            });
    cloud.resourceManager().subscribeFailures(
        [&](int h, std::uint64_t) { sm.handleFailure(h); });
    ASSERT_TRUE(sm.deploy(2));
    const int victim = sm.instances()[0];

    FaultInjector inj(eq, cloud,
                      FaultConfig{}.withFpgaHardFail(sim::fromMicros(50),
                                                     victim));
    inj.arm();
    // A duplicate hard-fail of the same node must be swallowed.
    eq.schedule(sim::fromMicros(60), [&] { inj.failFpga(victim); });
    eq.runFor(sim::fromMillis(5));

    EXPECT_EQ(sm.failovers(), 1u);
    EXPECT_EQ(sm.instances().size(), 2u);
    for (int instance : sm.instances())
        EXPECT_NE(instance, victim);
    EXPECT_EQ(cloud.resourceManager().failedCount(), 1);
    EXPECT_TRUE(inj.nodeDown(victim));
    EXPECT_EQ(inj.injected(), 1u);  // the duplicate did not count

    // Repair: the node rejoins the free pool.
    inj.repairFpga(victim);
    EXPECT_FALSE(inj.nodeDown(victim));
    EXPECT_EQ(cloud.resourceManager().failedCount(), 0);
    EXPECT_EQ(inj.recovered(), 1u);
}

TEST(FaultInjection, ReconfigPauseReturnsNodeToPool)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloud());
    const int free_before = cloud.resourceManager().freeCount();

    FaultInjector inj(eq, cloud,
                      FaultConfig{}.withReconfigPause(
                          sim::fromMicros(10), 3, sim::fromMicros(500)));
    inj.arm();

    eq.runUntil(sim::fromMicros(200));
    EXPECT_TRUE(inj.nodeDown(3));
    EXPECT_TRUE(cloud.shell(3).bridge().down());
    EXPECT_EQ(cloud.resourceManager().failedCount(), 1);

    eq.runUntil(sim::fromMillis(2));
    EXPECT_FALSE(inj.nodeDown(3));
    EXPECT_FALSE(cloud.shell(3).bridge().down());
    EXPECT_EQ(cloud.resourceManager().failedCount(), 0);
    EXPECT_EQ(cloud.resourceManager().freeCount(), free_before);
    EXPECT_EQ(inj.downtime(3), sim::fromMicros(500));
}

TEST(FaultInjection, SwitchBrownoutDropsAndClears)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloud());
    NullRole sink;
    ASSERT_GE(cloud.shell(1).addRole(&sink), 0);
    auto ch = cloud.openLtl(0, 1, sink.port);

    FaultInjector inj(eq, cloud,
                      FaultConfig{}.withSwitchBrownout(
                          sim::fromMicros(100), 0, 0, 0.4, true,
                          sim::fromMicros(600)));
    inj.arm();

    auto *engine = cloud.shell(0).ltlEngine();
    for (int i = 0; i < 60; ++i) {
        eq.scheduleAfter(i * 10 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 1024);
                         });
    }
    eq.schedule(sim::fromMicros(300), [&] {
        EXPECT_TRUE(cloud.topology().tor(0, 0).inBrownout());
    });
    eq.runFor(sim::fromMillis(20));

    EXPECT_FALSE(cloud.topology().tor(0, 0).inBrownout());
    EXPECT_GT(cloud.topology().tor(0, 0).brownoutDrops(), 0u);
    EXPECT_EQ(sink.received, 60);  // LTL recovered every drop
    EXPECT_EQ(engine->framesAcked() + engine->framesAbandoned(),
              engine->framesSent());
}

// ---------------------------------------------------------------------
// Determinism: a fault schedule is a pure function of its seed.
// ---------------------------------------------------------------------

std::string
faultRunSnapshot(std::uint64_t seed)
{
    EventQueue eq;
    obs::Observability hub;
    auto cfg = smallCloud();
    cfg.obs = &hub;
    core::ConfigurableCloud cloud(eq, cfg);
    NullRole sink;
    cloud.shell(5).addRole(&sink);
    auto ch = cloud.openLtl(0, 5, sink.port);

    FaultInjector inj(eq, cloud,
                      FaultConfig{}
                          .withSeed(seed)
                          .withHostLinkFlap(sim::fromMicros(400), 0,
                                            sim::fromMicros(150))
                          .withRandomFlaps(2000.0, sim::fromMicros(100))
                          .withRandomBursts(1500.0, 0.3,
                                            sim::fromMicros(200))
                          .withRandomHorizon(sim::fromMillis(4)));
    inj.arm();

    auto *engine = cloud.shell(0).ltlEngine();
    for (int i = 0; i < 80; ++i) {
        eq.scheduleAfter(i * 25 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 512);
                         });
    }
    eq.runFor(sim::fromMillis(8));
    return hub.registry.snapshotJson();
}

TEST(FaultInjection, SameSeedScheduleIsByteIdentical)
{
    const auto a = faultRunSnapshot(11);
    const auto b = faultRunSnapshot(11);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    // fault.* metrics are part of the snapshot.
    EXPECT_NE(a.find("fault.injected"), std::string::npos);
    EXPECT_NE(a.find("fault.node0.downtime_us"), std::string::npos);
}

// ---------------------------------------------------------------------
// RAII channel handles.
// ---------------------------------------------------------------------

TEST(LtlChannelHandle, CloseFreesConnectionTableEntries)
{
    EventQueue eq;
    auto cfg = smallCloud();
    cfg.shellTemplate.ltl.maxConnections = 2;
    core::ConfigurableCloud cloud(eq, cfg);
    NullRole sink;
    ASSERT_GE(cloud.shell(1).addRole(&sink), 0);

    // With only 2 connection-table entries per engine, opening a channel
    // 8 times in sequence only works if the handle's destructor really
    // releases its entries.
    for (int i = 0; i < 8; ++i) {
        auto ch = cloud.openLtl(0, 1, sink.port);
        ASSERT_TRUE(ch.isOpen());
        ch.send(128);
        eq.runFor(sim::fromMicros(200));
    }
    EXPECT_EQ(sink.received, 8);
}

TEST(LtlChannelHandle, MoveTransfersOwnership)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloud());
    NullRole sink;
    ASSERT_GE(cloud.shell(1).addRole(&sink), 0);

    auto ch = cloud.openLtl(0, 1, sink.port);
    const auto send_id = ch.sendConn();
    core::LtlChannel moved = std::move(ch);
    EXPECT_FALSE(ch.isOpen());
    ASSERT_TRUE(moved.isOpen());
    EXPECT_EQ(moved.sendConn(), send_id);
    EXPECT_EQ(moved.senderEngine(), cloud.shell(0).ltlEngine());

    moved.send(64);
    eq.runFor(sim::fromMicros(200));
    EXPECT_EQ(sink.received, 1);

    moved.close();
    EXPECT_FALSE(moved.isOpen());
    moved.close();  // double close is a no-op
    EXPECT_FALSE(static_cast<bool>(moved));
}

TEST(LtlChannelHandle, FailedReflectsLtlConnectionState)
{
    EventQueue eq;
    auto cfg = smallCloud();
    cfg.shellTemplate.ltl.maxRetries = 3;
    core::ConfigurableCloud cloud(eq, cfg);
    NullRole sink;
    ASSERT_GE(cloud.shell(1).addRole(&sink), 0);
    auto ch = cloud.openLtl(0, 1, sink.port);

    // Permanently cut the cable: the send connection exhausts its
    // retries and is declared failed.
    FaultInjector inj(eq, cloud);
    inj.failFpga(1);
    ch.send(256);
    eq.runFor(sim::fromMillis(5));
    EXPECT_TRUE(ch.failed());
    EXPECT_GE(cloud.shell(0).ltlEngine()->connectionFailures(), 1u);
    // Closing a failed channel is clean (tolerant teardown).
    ch.close();
    EXPECT_FALSE(ch.isOpen());
}

// ---------------------------------------------------------------------
// Construction-time validation.
// ---------------------------------------------------------------------

TEST(ConfigValidation, BadCloudConfigsDie)
{
    EventQueue eq;
    auto zero_servers = [&] {
        core::CloudConfig cfg;
        cfg.topology.hostsPerRack = 0;
        core::ConfigurableCloud cloud(eq, cfg);
    };
    EXPECT_DEATH(zero_servers(), "no servers");

    auto negative_cable = [&] {
        core::CloudConfig cfg;
        cfg.topology.hostCableMeters = -1.0;
        core::ConfigurableCloud cloud(eq, cfg);
    };
    EXPECT_DEATH(negative_cable(), "cable lengths");

    auto sampling_without_hub = [&] {
        auto cfg = smallCloud();
        cfg.obsSamplePeriod = sim::fromMicros(50);
        core::ConfigurableCloud cloud(eq, cfg);
    };
    EXPECT_DEATH(sampling_without_hub(), "withObservability");
}

TEST(ConfigValidation, BadFaultConfigsDie)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloud());

    EXPECT_DEATH(FaultInjector(eq, cloud,
                               FaultConfig{}.withHostLinkFlap(
                                   0, 99, sim::fromMicros(10))),
                 "targets host");
    EXPECT_DEATH(FaultInjector(eq, cloud,
                               FaultConfig{}.withCorruptionBurst(
                                   0, 0, 1.5, sim::fromMicros(10))),
                 "rate must be in");
    EXPECT_DEATH(FaultInjector(eq, cloud,
                               FaultConfig{}.withRandomFlaps(
                                   10.0, sim::fromMicros(10))),
                 "randomHorizon");
    EXPECT_DEATH(FaultInjector(eq, cloud,
                               FaultConfig{}.withSwitchBrownout(
                                   0, 7, 0, 0.1, false,
                                   sim::fromMicros(10))),
                 "outside the fabric");
}

TEST(ConfigValidation, SecondConcurrentInjectorDies)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloud());
    FaultInjector first(eq, cloud);
    EXPECT_DEATH(FaultInjector(eq, cloud), "already");
}

TEST(ConfigValidation, InjectorSlotFreedOnDestruction)
{
    EventQueue eq;
    core::ConfigurableCloud cloud(eq, smallCloud());
    {
        FaultInjector inj(eq, cloud);
        EXPECT_EQ(cloud.faultInjector(), &inj);
    }
    EXPECT_EQ(cloud.faultInjector(), nullptr);
    FaultInjector again(eq, cloud);  // slot is reusable
    EXPECT_EQ(cloud.faultInjector(), &again);
}

}  // namespace
