/**
 * @file
 * Unit tests for the discrete-event kernel: event ordering, cancellation,
 * RNG determinism and distribution sanity, statistics correctness.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace {

using namespace ccsim;
using sim::EventQueue;
using sim::Rng;
using sim::SampleStats;
using sim::TimePs;

TEST(Time, Conversions)
{
    EXPECT_EQ(sim::kMicrosecond, 1'000'000);
    EXPECT_DOUBLE_EQ(sim::toMicros(2'500'000), 2.5);
    EXPECT_EQ(sim::fromMicros(2.5), 2'500'000);
    EXPECT_EQ(sim::fromNanos(1.0), 1000);
    EXPECT_EQ(sim::fromSeconds(1e-12), 1);
}

TEST(Time, SerializationDelay)
{
    // 1500 B at 40 Gb/s = 300 ns.
    EXPECT_EQ(sim::serializationDelay(1500, 40.0), 300 * sim::kNanosecond);
    // 64 B at 10 Gb/s = 51.2 ns.
    EXPECT_EQ(sim::serializationDelay(64, 10.0), 51200);
}

TEST(Time, PropagationAndClocks)
{
    EXPECT_EQ(sim::propagationDelay(100.0), 500 * sim::kNanosecond);
    EXPECT_EQ(sim::cyclePeriod(200.0), 5000);  // 200 MHz = 5 ns
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, FifoAmongEqualTimes)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(10, [&] { ran = true; });
    eq.cancel(id);
    eq.runAll();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelAfterFireIsNoOp)
{
    EventQueue eq;
    int count = 0;
    auto id = eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.runUntil(15);
    eq.cancel(id);  // already fired
    EXPECT_EQ(eq.size(), 1u);
    eq.runAll();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunUntilAdvancesClockToLimit)
{
    EventQueue eq;
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000);
    bool ran = false;
    eq.schedule(5000, [&] { ran = true; });
    eq.runUntil(4000);
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.now(), 4000);
    eq.runUntil(5000);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsScheduledDuringExecutionRun)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleAfter(10, recurse);
    };
    eq.schedule(0, recurse);
    eq.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(7);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++seen[rng.uniformInt(std::uint64_t{10})];
    for (int count : seen)
        EXPECT_GT(count, 800);  // each bucket near 1000
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMeanCv)
{
    Rng rng(17);
    double sum = 0, sq = 0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.lognormalMeanCv(10.0, 0.5);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.15);
    EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.03);
}

TEST(Rng, PoissonMean)
{
    Rng rng(19);
    double small_sum = 0, large_sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        small_sum += static_cast<double>(rng.poisson(3.0));
        large_sum += static_cast<double>(rng.poisson(100.0));
    }
    EXPECT_NEAR(small_sum / n, 3.0, 0.05);
    EXPECT_NEAR(large_sum / n, 100.0, 0.5);
}

TEST(Rng, SplitStreamsIndependent)
{
    Rng parent(23);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 3);
}

TEST(SampleStats, BasicMoments)
{
    SampleStats s;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.add(x);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(SampleStats, Percentiles)
{
    SampleStats s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.011);
}

TEST(SampleStats, PercentileSingleSampleEdges)
{
    // Regression: a single-sample set returns that sample for EVERY p,
    // including the p=0 and p=100 edges (nearest-rank used to index
    // out of range / pick a default here).
    SampleStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 42.0);
    EXPECT_DOUBLE_EQ(s.median(), 42.0);
}

TEST(SampleStats, PercentileOfEmptyIsZero)
{
    SampleStats s;
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(99.9), 0.0);
}

TEST(SampleStats, NanInputsAreCountedNotRecorded)
{
    // Regression: a NaN sample used to poison the sort order and with
    // it every later percentile query.
    SampleStats s;
    s.add(1.0);
    s.add(std::nan(""));
    s.add(3.0);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_EQ(s.nanCount(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 3.0);
    s.clear();
    EXPECT_EQ(s.nanCount(), 0u);
}

TEST(SampleStatsDeathTest, PercentileRejectsBadP)
{
    SampleStats s;
    s.add(1.0);
    EXPECT_DEATH(s.percentile(std::nan("")), "p is NaN");
    EXPECT_DEATH(s.percentile(-0.5), "out of \\[0,100\\]");
    EXPECT_DEATH(s.percentile(100.5), "out of \\[0,100\\]");
}

TEST(SampleStats, AddAfterPercentileQuery)
{
    SampleStats s;
    s.add(10.0);
    s.add(20.0);
    EXPECT_DOUBLE_EQ(s.median(), 15.0);
    s.add(30.0);  // must re-sort lazily
    EXPECT_DOUBLE_EQ(s.median(), 20.0);
}

TEST(LogHistogram, PercentileAccuracy)
{
    sim::LogHistogram h(1.0, 48);
    sim::SampleStats exact;
    Rng rng(29);
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.lognormalMeanCv(100.0, 1.0);
        h.add(x);
        exact.add(x);
    }
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
        const double approx = h.percentile(p);
        const double truth = exact.percentile(p);
        EXPECT_NEAR(approx / truth, 1.0, 0.05) << "p=" << p;
    }
    EXPECT_DOUBLE_EQ(h.max(), exact.max());
    EXPECT_NEAR(h.mean(), exact.mean(), 1e-9);
}

TEST(LogHistogram, NanInputsAreCountedNotBinned)
{
    sim::LogHistogram h;
    h.add(2.0);
    h.addN(std::nan(""), 3);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.nanCount(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    h.clear();
    EXPECT_EQ(h.nanCount(), 0u);
}

TEST(LogHistogram, MergeCombinesDistributions)
{
    sim::LogHistogram a(1.0, 48), b(1.0, 48);
    for (int i = 1; i <= 50; ++i)
        a.add(i);
    for (int i = 51; i <= 100; ++i)
        b.add(i);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 100.0);
    EXPECT_DOUBLE_EQ(a.mean(), 50.5);
    EXPECT_NEAR(a.percentile(50.0) / 50.0, 1.0, 0.05);

    // Merging an empty histogram is a no-op on the moments.
    sim::LogHistogram empty(1.0, 48);
    a.merge(empty);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_DOUBLE_EQ(a.max(), 100.0);
}

TEST(LogHistogramDeathTest, MergeRejectsMismatchedBinning)
{
    sim::LogHistogram a(1.0, 48), b(0.5, 48), c(1.0, 96);
    EXPECT_DEATH(a.merge(b), "binning parameters differ");
    EXPECT_DEATH(a.merge(c), "binning parameters differ");
}

TEST(TimeWeighted, PiecewiseConstantAverage)
{
    sim::TimeWeighted tw;
    tw.update(0, 1.0);
    tw.update(10, 3.0);   // value 1 held for 10
    tw.update(20, 0.0);   // value 3 held for 10
    EXPECT_DOUBLE_EQ(tw.average(), 2.0);
    EXPECT_DOUBLE_EQ(tw.peak(), 3.0);
}

}  // namespace
