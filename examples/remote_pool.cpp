/**
 * @file
 * Example: Hardware-as-a-Service — a DNN accelerator pool shared by
 * remote clients, with failure handling (the paper's Section V
 * scenario, Figure 13).
 *
 * A Service Manager leases FPGAs from the Resource Manager, configures
 * the DNN role on each through the per-node FPGA Managers, and clients
 * on other servers call into the pool over LTL. When a pool node fails,
 * the SM leases a replacement from the abundant spare pool — the
 * failure-handling advantage the paper contrasts against the torus.
 */
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cloud.hpp"
#include "haas/haas.hpp"
#include "roles/dnn_role.hpp"
#include "roles/ranking/ranking_role.hpp"

using namespace ccsim;

int
main()
{
    std::printf("== HaaS remote pool example ==\n\n");

    sim::EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 6;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    cfg.shellTemplate.ltl.maxConnections = 32;
    core::ConfigurableCloud cloud(eq, cfg);

    // --- deploy a 3-FPGA DNN service through HaaS ---
    std::vector<std::unique_ptr<roles::DnnRole>> roles_storage;
    haas::ServiceManager sm(eq, cloud.resourceManager(), "dnn-serving",
                            [&](int) -> fpga::Role * {
                                roles_storage.push_back(
                                    std::make_unique<roles::DnnRole>(eq));
                                return roles_storage.back().get();
                            });
    cloud.resourceManager().subscribeFailures(
        [&](int host, std::uint64_t) {
            std::printf("  [RM] node %d failed while leased; SM "
                        "replacing: %s\n", host,
                        sm.handleFailure(host) ? "ok" : "POOL EMPTY");
        });
    sm.deploy(3);
    std::printf("service '%s' deployed on hosts:", sm.name().c_str());
    for (int h : sm.instances())
        std::printf(" %d", h);
    std::printf("  (pool: %d free / %d total)\n\n",
                cloud.resourceManager().freeCount(),
                cloud.resourceManager().totalCount());

    // --- a client on host 11 sends inferences into the pool ---
    const int client_host = 11;
    roles::ForwarderRole forwarder;
    cloud.shell(client_host).addRole(&forwarder);

    struct Target {
        int host;
        core::LtlChannel req, rep;
    };
    std::vector<Target> targets;
    auto connect_pool = [&] {
        targets.clear();
        for (int instance : sm.instances()) {
            Target t;
            t.host = instance;
            t.req = cloud.openLtl(client_host, instance,
                                  fpga::kErPortRole0);
            t.rep = cloud.openLtl(instance, client_host,
                                  forwarder.port());
            targets.push_back(std::move(t));
        }
    };
    connect_pool();

    std::unordered_map<std::uint64_t, sim::TimePs> outstanding;
    int responses = 0;
    cloud.shell(client_host)
        .setHostRxHandler([&](int, const router::ErMessagePtr &msg) {
            auto delivery =
                std::static_pointer_cast<fpga::LtlDelivery>(msg->payload);
            if (!delivery || !delivery->appPayload)
                return;
            auto resp = std::static_pointer_cast<roles::DnnResponse>(
                delivery->appPayload);
            auto it = outstanding.find(resp->requestId);
            if (it == outstanding.end())
                return;
            std::printf("  [%.0f us] inference #%llu done in %.0f us "
                        "(argmax=%zu)\n", sim::toMicros(eq.now()),
                        static_cast<unsigned long long>(resp->requestId),
                        sim::toMicros(eq.now() - it->second),
                        resp->output
                            ? static_cast<std::size_t>(
                                  std::max_element(resp->output->begin(),
                                                   resp->output->end()) -
                                  resp->output->begin())
                            : 0);
            outstanding.erase(it);
            ++responses;
        });

    std::uint64_t next_id = 1;
    auto send_inference = [&] {
        const Target &t = targets[next_id % targets.size()];
        auto req = std::make_shared<roles::DnnRequest>();
        req->requestId = next_id++;
        req->replyConn = t.rep.sendConn();
        req->input = std::make_shared<std::vector<float>>(64, 0.25f);
        outstanding[req->requestId] = eq.now();
        auto fwd = std::make_shared<roles::ForwarderRole::ForwardRequest>();
        fwd->sendConn = t.req.sendConn();
        fwd->bytes = 512;
        fwd->inner = std::move(req);
        cloud.shell(client_host)
            .sendFromHost(forwarder.port(), 512, std::move(fwd));
    };

    std::printf("sending 6 inferences round-robin into the pool:\n");
    for (int i = 0; i < 6; ++i)
        send_inference();
    eq.runFor(sim::fromMicros(20000));

    // --- fail a pool node; the SM replaces it from the spare pool ---
    const int victim = sm.instances()[0];
    std::printf("\ninjecting a hard failure on pool node %d...\n", victim);
    cloud.resourceManager().reportFailure(victim);
    connect_pool();  // re-resolve the service endpoints
    std::printf("service now on hosts:");
    for (int h : sm.instances())
        std::printf(" %d", h);
    std::printf("  (failovers so far: %llu)\n\n",
                static_cast<unsigned long long>(sm.failovers()));

    std::printf("sending 6 more inferences after failover:\n");
    for (int i = 0; i < 6; ++i)
        send_inference();
    eq.runFor(sim::fromMicros(20000));

    std::printf("\n%d/12 inferences served; pool: %d free, %d failed\n",
                responses, cloud.resourceManager().freeCount(),
                cloud.resourceManager().failedCount());
    return responses == 12 ? 0 : 1;
}
