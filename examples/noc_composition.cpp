/**
 * @file
 * Example: composing Elastic Routers into a larger on-chip network.
 *
 * Section V-B: "multiple ERs can be composed to form a larger on-chip
 * network topology, e.g., a ring or a 2-D mesh." A multi-role FPGA image
 * with more endpoints than one crossbar comfortably supports can spread
 * them over several ERs; this example builds a ring and a mesh, runs
 * traffic across them, and shows the latency/locality trade-off.
 */
#include <cstdio>

#include "router/er_network.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

using namespace ccsim;

namespace {

/** Average message latency between two endpoints of a network. */
double
measureUs(sim::EventQueue &eq, router::ErNetwork &net, int src, int dst,
          int messages)
{
    sim::SampleStats lat;
    net.endpoint(dst).setMessageHandler(
        [&](const router::ErMessagePtr &m) {
            lat.add(sim::toMicros(eq.now() - m->createdAt));
        });
    for (int i = 0; i < messages; ++i) {
        eq.scheduleAfter(i * sim::kMicrosecond, [&net, src, dst] {
            net.endpoint(src).sendMessage(dst, 0, 256);
        });
    }
    eq.runAll();
    return lat.mean();
}

}  // namespace

int
main()
{
    std::printf("== Elastic Router composition example ==\n\n");

    // A ring of 4 ERs, two endpoints each (8 on-chip clients).
    {
        sim::EventQueue eq;
        auto ring = router::ErNetwork::ring(eq, 4, 2);
        std::printf("ring of %d routers, %d endpoints:\n",
                    ring->numRouters(), ring->numEndpoints());
        std::printf("  same-router  (0 -> 1): %6.3f us\n",
                    measureUs(eq, *ring, 0, 1, 50));
        std::printf("  one hop      (0 -> 2): %6.3f us\n",
                    measureUs(eq, *ring, 0, 2, 50));
        std::printf("  diameter     (0 -> 4): %6.3f us\n",
                    measureUs(eq, *ring, 0, 4, 50));
    }

    // A 3x3 mesh with one endpoint per router.
    {
        sim::EventQueue eq;
        auto mesh = router::ErNetwork::mesh(eq, 3, 3, 1);
        std::printf("\n3x3 mesh, dimension-order routing:\n");
        std::printf("  neighbour    (0 -> 1): %6.3f us\n",
                    measureUs(eq, *mesh, 0, 1, 50));
        std::printf("  corner apart (0 -> 8): %6.3f us\n",
                    measureUs(eq, *mesh, 0, 8, 50));

        // All-to-all storm: every endpoint fires at every other.
        int delivered = 0;
        for (int e = 0; e < mesh->numEndpoints(); ++e)
            mesh->endpoint(e).setMessageHandler(
                [&delivered](const router::ErMessagePtr &) {
                    ++delivered;
                });
        for (int s = 0; s < mesh->numEndpoints(); ++s) {
            for (int d = 0; d < mesh->numEndpoints(); ++d) {
                if (s != d)
                    mesh->endpoint(s).sendMessage(d, 0, 512);
            }
        }
        eq.runAll();
        std::printf("  all-to-all storm: %d/%d messages delivered, "
                    "link backlog %zu\n", delivered,
                    mesh->numEndpoints() * (mesh->numEndpoints() - 1),
                    mesh->linkBacklog());
    }

    std::printf("\nlatency grows with on-chip distance, and the credit-"
                "respecting inter-router links\nback-pressure cleanly — "
                "the shell's single 4-port ER is just the smallest "
                "instance.\n");
    return 0;
}
