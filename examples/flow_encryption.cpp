/**
 * @file
 * Example: transparent host-to-host flow encryption in the
 * bump-in-the-wire (the paper's Section IV scenario).
 *
 * Host software on two servers sets up an encrypted flow; afterwards the
 * sending FPGA encrypts every matching packet on its way NIC -> TOR and
 * the receiving FPGA decrypts TOR -> NIC. Software at both ends sees
 * plaintext and spends zero cycles on crypto — the CPU savings the paper
 * quantifies as 5 (GCM) to 15+ (CBC-SHA1) cores at 40 Gb/s.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "crypto/crypto_timing.hpp"
#include "roles/crypto_role.hpp"

using namespace ccsim;

int
main()
{
    std::printf("== flow encryption example ==\n\n");

    sim::EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 3;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    core::ConfigurableCloud cloud(eq, cfg);

    const int alice = 0, bob = 4;  // cross-rack

    roles::CryptoRoleParams params;
    params.suite = crypto::Suite::kAesCbc128Sha1;
    roles::CryptoRole crypto_a(eq, params);
    roles::CryptoRole crypto_b(eq, params);
    cloud.shell(alice).addRole(&crypto_a);
    cloud.shell(bob).addRole(&crypto_b);

    // Control plane: both ends install the flow key (in production this
    // happens over PCIe from host software; CryptoFlowConfig messages
    // are also supported).
    crypto::Key128 key{};
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(0xC0 + i);
    roles::FlowKey flow{cloud.addressOf(alice), cloud.addressOf(bob),
                        4433, 4433, 17};
    crypto_a.addEncryptFlow(flow, key);
    crypto_b.addDecryptFlow(flow, key);
    std::printf("flow %s:%u -> %s:%u configured for AES-CBC-128 + "
                "HMAC-SHA1\n\n", flow.src.str().c_str(), flow.srcPort,
                flow.dst.str().c_str(), flow.dstPort);

    // Bob's software just reads plaintext.
    int received = 0;
    cloud.nic(bob).setReceiveHandler([&](const net::PacketPtr &pkt) {
        std::printf("  [%.2f us] bob's host software received: \"%s\" "
                    "(%u bytes on the wire were ciphertext)\n",
                    sim::toMicros(eq.now()),
                    std::string(pkt->data.begin(), pkt->data.end()).c_str(),
                    pkt->payloadBytes);
        ++received;
    });

    // Alice's software sends plaintext packets on the flow.
    const std::vector<std::string> messages = {
        "wire transfer #1: $1,000,000",
        "the launch code is 0000",
        "actually it is 00000000",
    };
    for (const auto &text : messages) {
        auto pkt = net::makePacket();
        pkt->ipDst = cloud.addressOf(bob);
        pkt->srcPort = 4433;
        pkt->dstPort = 4433;
        pkt->data.assign(text.begin(), text.end());
        pkt->payloadBytes = static_cast<std::uint32_t>(pkt->data.size());
        cloud.nic(alice).sendPacket(pkt);
    }
    eq.runAll();

    std::printf("\nencrypted %llu packets at alice, decrypted %llu at "
                "bob, %llu auth failures\n",
                static_cast<unsigned long long>(
                    crypto_a.packetsEncrypted()),
                static_cast<unsigned long long>(
                    crypto_b.packetsDecrypted()),
                static_cast<unsigned long long>(crypto_b.authFailures()));

    crypto::CpuCryptoModel cpu;
    std::printf("CPU cores this offload frees at 40 Gb/s full duplex: "
                "%.1f\n",
                cpu.coresForLineRate(crypto::Suite::kAesCbc128Sha1, 40.0));
    std::printf("per-packet FPGA datapath latency (1500 B): %.1f us "
                "(33-packet CBC interleave)\n",
                sim::toMicros(crypto_a.packetLatency(1500)));
    return received == 3 ? 0 : 1;
}
