/**
 * @file
 * Example: Bing-style web search ranking with local FPGA acceleration
 * (the paper's Section III scenario).
 *
 * Demonstrates the functional side of the ranking role: a synthetic
 * corpus is generated, queries are ranked in software and on the
 * (simulated) FPGA, the results are shown to be identical, and the
 * latency/throughput benefit of offload is measured with the queueing
 * model.
 */
#include <cstdio>
#include <memory>

#include "core/cloud.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "host/workload.hpp"
#include "roles/ranking/ranking_role.hpp"

using namespace ccsim;

int
main()
{
    std::printf("== search ranking example ==\n\n");

    // ---- Part 1: functional equivalence (real FFU + DPF features) ----
    sim::EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 2;
    cfg.topology.racksPerPod = 1;
    cfg.topology.l1PerPod = 1;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    core::ConfigurableCloud cloud(eq, cfg);

    roles::RankingRole role(eq);
    const int port = cloud.shell(0).addRole(&role);
    std::printf("ranking role (FFU + DPF) placed: %u ALMs at %.0f MHz "
                "(Figure 5's role region)\n\n", role.areaAlms(),
                role.clockMhz());

    host::CorpusGenerator corpus(30000, 1.0, 2026);
    roles::RankingModel model;

    auto query = std::make_shared<host::Query>(corpus.makeQuery(4));
    auto docs = std::make_shared<std::vector<host::Document>>();
    for (int i = 0; i < 50; ++i)
        docs->push_back(corpus.makeCandidateDocument(*query, 250));

    // Software reference ranking.
    const auto sw_ranked = roles::rankDocuments(*query, *docs, model);
    std::printf("software ranker: top document %u (score %.4f) of %zu "
                "candidates\n", sw_ranked.front().docId,
                sw_ranked.front().score, docs->size());

    // Same query through the FPGA role via PCIe.
    auto req = std::make_shared<roles::RankingRequest>();
    req->requestId = 1;
    req->docCount = static_cast<std::uint32_t>(docs->size());
    req->query = query;
    req->docs = docs;
    std::shared_ptr<roles::RankingResponse> resp;
    sim::TimePs fpga_latency = 0;
    cloud.shell(0).setHostRxHandler(
        [&](int, const router::ErMessagePtr &msg) {
            resp = std::static_pointer_cast<roles::RankingResponse>(
                msg->payload);
            fpga_latency = eq.now();
        });
    cloud.shell(0).sendFromHost(port, 4096, req);
    eq.runAll();
    std::printf("FPGA role:       top document %u (score %.4f), "
                "round-trip %.1f us over PCIe + ER\n",
                resp->topDocId, resp->topScore,
                sim::toMicros(fpga_latency));
    std::printf("results match: %s\n\n",
                resp->topDocId == sw_ranked.front().docId ? "yes" : "NO");

    // ---- Part 2: the throughput story (queueing model) ----
    std::printf("single-server throughput at a fixed offered load of "
                "5500 qps:\n");
    for (bool use_fpga : {false, true}) {
        sim::EventQueue eq2;
        std::unique_ptr<host::LocalFpgaAccelerator> accel;
        if (use_fpga)
            accel = std::make_unique<host::LocalFpgaAccelerator>(eq2);
        host::RankingServer server(eq2, host::RankingServiceParams{},
                                   accel.get(), 3);
        host::PoissonLoadGenerator gen(eq2, 5500.0,
                                       [&] { server.submitQuery(); }, 4);
        gen.start();
        eq2.runUntil(sim::fromSeconds(10.0));
        gen.stop();
        std::printf("  %-10s completed %6.0f qps, p99 latency %8.2f ms\n",
                    use_fpga ? "FPGA:" : "software:",
                    server.completed() / 10.0,
                    server.latencyMs().percentile(99.0));
    }
    std::printf("\n(the full Figure 6 sweep lives in "
                "bench/fig06_local_ranking)\n");
    return 0;
}
