/**
 * @file
 * Quickstart: build a small Configurable Cloud, send a message between
 * two FPGAs over LTL, and poke at the main subsystems.
 *
 *   $ ./build/examples/quickstart
 *
 * This walks the essential API surface:
 *   1. build a datacenter (servers + NICs + bump-in-the-wire shells);
 *   2. place a role into a shell's role region;
 *   3. open an LTL channel between two FPGAs and send a message;
 *   4. read statistics back out.
 */
#include <cstdio>
#include <memory>

#include "core/cloud.hpp"

using namespace ccsim;

namespace {

/** The smallest possible role: prints what arrives over LTL. */
struct GreeterRole : fpga::Role {
    sim::EventQueue *eq = nullptr;
    int port = -1;
    int received = 0;

    std::string name() const override { return "greeter"; }
    std::uint32_t areaAlms() const override { return 1200; }

    void attach(fpga::Shell &, int er_port) override { port = er_port; }

    void onMessage(const router::ErMessagePtr &msg) override
    {
        // Messages from the LTL endpoint arrive wrapped in LtlDelivery.
        if (msg->srcEndpoint != fpga::kErPortLtl)
            return;
        auto delivery =
            std::static_pointer_cast<fpga::LtlDelivery>(msg->payload);
        auto text =
            std::static_pointer_cast<std::string>(delivery->appPayload);
        std::printf("  [%.2f us] greeter role got %u bytes over LTL: "
                    "\"%s\"\n", sim::toMicros(eq->now()), delivery->bytes,
                    text ? text->c_str() : "(no payload)");
        ++received;
    }
};

}  // namespace

int
main()
{
    std::printf("== ccsim quickstart ==\n\n");

    // 1. Build a two-rack datacenter: 4 hosts per rack, one pod.
    sim::EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 4;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    core::ConfigurableCloud cloud(eq, cfg);
    std::printf("built a cloud with %d servers; FPGA pool has %d free "
                "devices\n", cloud.numServers(),
                cloud.resourceManager().freeCount());

    // 2. Place a role on server 5's FPGA (cross-rack from server 0).
    GreeterRole greeter;
    greeter.eq = &eq;
    const int port = cloud.shell(5).addRole(&greeter);
    std::printf("placed '%s' on shell 5 at ER port %d (%u ALMs, %.0f%% "
                "of the device free)\n", greeter.name().c_str(), port,
                greeter.areaAlms(),
                100.0 * cloud.shell(5).areaModel().freeAlms() /
                    cloud.shell(5).areaModel().totalAvailable());

    // 3. Open an LTL channel 0 -> 5 and send greetings. The returned
    // RAII handle owns both connection-table entries and closes them
    // when it goes out of scope.
    auto ch = cloud.openLtl(0, 5, port);
    for (int i = 0; i < 3; ++i) {
        auto text = std::make_shared<std::string>(
            "hello from FPGA 0 #" + std::to_string(i));
        ch.send(64 + 16 * static_cast<std::uint32_t>(i), text);
    }
    eq.runFor(sim::fromMicros(200));

    // 4. Statistics.
    auto *ltl = cloud.shell(0).ltlEngine();
    std::printf("\nsender LTL stats: %llu frames sent, %llu "
                "retransmitted, mean RTT %.2f us\n",
                static_cast<unsigned long long>(ltl->framesSent()),
                static_cast<unsigned long long>(ltl->framesRetransmitted()),
                ltl->rttUs().mean());
    std::printf("receiver delivered %d messages through ER port %d\n",
                greeter.received, port);
    std::printf("\nquickstart done. Next: examples/search_ranking, "
                "examples/flow_encryption, examples/remote_pool.\n");
    return 0;
}
