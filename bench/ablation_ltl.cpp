/**
 * @file
 * Ablation A2: LTL protocol mechanisms.
 *
 *  1. NACK fast retransmit vs timeout-only recovery under packet loss:
 *     NACKs recover a lost frame in ~1 RTT instead of the 50 us timeout,
 *     which is why the paper adds them ("NACKs are used to request
 *     timely retransmission of particular packets without waiting for a
 *     timeout").
 *  2. DC-QCN on/off under persistent ECN marking: the reaction point
 *     backs the sender off instead of blasting into a congested fabric
 *     (incast protection).
 *  3. Retransmission-timeout sweep: the configurable timeout trades
 *     recovery latency against spurious retransmissions.
 */
#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "ltl/ltl_engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

using namespace ccsim;
using ltl::LtlConfig;
using ltl::LtlEngine;

namespace {

/** Minimal two-engine harness with loss/ECN injection on A->B data. */
struct Pair {
    sim::EventQueue eq;
    std::unique_ptr<LtlEngine> a, b;
    sim::TimePs oneWay = sim::fromNanos(1200);
    double lossProb = 0.0;
    bool markEcn = false;
    sim::Rng rng{99};
    int delivered = 0;
    sim::SampleStats deliveryUs;

    explicit Pair(LtlConfig base)
    {
        LtlConfig ca = base;
        ca.localIp = {1};
        LtlConfig cb = base;
        cb.localIp = {2};
        a = std::make_unique<LtlEngine>(
            eq, ca, [this](const net::PacketPtr &p) {
                auto hdr = std::static_pointer_cast<ltl::LtlHeader>(p->meta);
                const bool data = hdr && (hdr->flags & ltl::kFlagData);
                if (data && lossProb > 0 && rng.bernoulli(lossProb))
                    return;
                if (data && markEcn)
                    p->ecnMarked = true;
                eq.scheduleAfter(oneWay,
                                 [this, p] { b->onNetworkPacket(p); });
            });
        b = std::make_unique<LtlEngine>(
            eq, cb, [this](const net::PacketPtr &p) {
                eq.scheduleAfter(oneWay,
                                 [this, p] { a->onNetworkPacket(p); });
            });
        b->setDeliveryHandler([this](const ltl::LtlMessage &m) {
            ++delivered;
            deliveryUs.add(sim::toMicros(eq.now() - m.sentAt));
        });
    }

    std::uint16_t connect()
    {
        return a->openSend({2}, b->openReceive(0));
    }
};

}  // namespace

int
main()
{
    std::printf("=== Ablation A2: LTL protocol mechanisms ===\n\n");

    std::printf("-- 1. Loss recovery: NACK fast retransmit vs "
                "timeout-only --\n");
    std::printf("  %8s | %12s %12s | %12s %12s\n", "loss", "nack p99(us)",
                "timeouts", "t/o p99(us)", "timeouts");
    for (double loss : {0.001, 0.01, 0.05}) {
        double p99[2];
        std::uint64_t tos[2];
        int idx = 0;
        for (bool nack : {true, false}) {
            LtlConfig cfg;
            cfg.enableNack = nack;
            Pair pair(cfg);
            pair.lossProb = loss;
            const auto conn = pair.connect();
            for (int i = 0; i < 2000; ++i) {
                pair.eq.scheduleAfter(i * 5 * sim::kMicrosecond,
                                      [&pair, conn] {
                                          pair.a->sendMessage(conn, 700);
                                      });
            }
            pair.eq.runUntil(sim::fromSeconds(1.0));
            if (pair.delivered != 2000)
                sim::panicf("ablation_ltl: only ", pair.delivered,
                            " of 2000 delivered");
            p99[idx] = pair.deliveryUs.percentile(99.0);
            tos[idx] = pair.a->timeouts();
            ++idx;
        }
        std::printf("  %7.1f%% | %12.1f %12llu | %12.1f %12llu\n",
                    loss * 100, p99[0],
                    static_cast<unsigned long long>(tos[0]), p99[1],
                    static_cast<unsigned long long>(tos[1]));
    }

    std::printf("\n-- 2. DC-QCN reaction to persistent ECN marking --\n");
    std::printf("  %10s | %18s %16s %18s\n", "dcqcn", "rate@burst(Gb/s)",
                "cnps received", "rate@+5ms(Gb/s)");
    for (bool dcqcn : {true, false}) {
        LtlConfig cfg;
        cfg.enableDcqcn = dcqcn;
        Pair pair(cfg);
        pair.markEcn = true;
        const auto conn = pair.connect();
        for (int i = 0; i < 500; ++i) {
            pair.eq.scheduleAfter(i * 2 * sim::kMicrosecond,
                                  [&pair, conn] {
                                      pair.a->sendMessage(conn, 1408);
                                  });
        }
        // Read the operating rate while the marked burst is active...
        pair.eq.runUntil(sim::fromMicros(1000));
        const double during = pair.a->currentRateGbps(conn);
        // ...then stop marking and let the recovery timers run.
        pair.markEcn = false;
        pair.eq.runUntil(sim::fromMicros(6000));
        const double after = pair.a->currentRateGbps(conn);
        std::printf("  %10s | %18.2f %16llu %18.2f\n",
                    dcqcn ? "on" : "off", during,
                    static_cast<unsigned long long>(
                        pair.a->cnpsReceived()),
                    after);
    }

    std::printf("\n-- 3. Retransmission timeout sweep (1%% loss, "
                "NACK off) --\n");
    std::printf("  %12s | %12s %14s\n", "timeout(us)", "p99(us)",
                "retransmits");
    for (int timeout_us : {25, 50, 100, 200}) {
        LtlConfig cfg;
        cfg.enableNack = false;
        cfg.retransmitTimeout = timeout_us * sim::kMicrosecond;
        Pair pair(cfg);
        pair.lossProb = 0.01;
        const auto conn = pair.connect();
        for (int i = 0; i < 2000; ++i) {
            pair.eq.scheduleAfter(i * 5 * sim::kMicrosecond,
                                  [&pair, conn] {
                                      pair.a->sendMessage(conn, 700);
                                  });
        }
        pair.eq.runUntil(sim::fromSeconds(1.0));
        std::printf("  %12d | %12.1f %14llu\n", timeout_us,
                    pair.deliveryUs.percentile(99.0),
                    static_cast<unsigned long long>(
                        pair.a->framesRetransmitted()));
    }

    std::printf("\nconclusion: NACKs keep loss-recovery latency near one "
                "RTT (the 50 us timeout is the\nbackstop, and its value "
                "trades recovery speed against spurious retransmits); "
                "DC-QCN\nthrottles senders under ECN marking so LTL "
                "coexists with lossless-class traffic.\n");
    return 0;
}
