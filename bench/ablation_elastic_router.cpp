/**
 * @file
 * Ablation A1: the Elastic Router's shared credit pool vs a conventional
 * static per-VC allocation (Section V-B design rationale: "the ER
 * supports an elastic policy that allows a pool of credits to be shared
 * among multiple VCs, which is effective in reducing the aggregate flit
 * buffering requirements").
 *
 * Two experiments:
 *  1. Burst absorption: a producer bursts a message on one VC toward a
 *     slow consumer. With a shared pool, the one hot VC may borrow the
 *     whole budget, so the producer hands off (and is released to do
 *     other work) much sooner than with static partitioning, where it
 *     is throttled to 1/numVcs of the buffering.
 *  2. Budget sizing: the smallest total buffer budget at which producer
 *     hand-off time for a single-VC burst reaches a target — elastic
 *     needs ~1/numVcs of the static budget.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "router/elastic_router.hpp"
#include "sim/event_queue.hpp"

using namespace ccsim;
using router::CreditPolicy;
using router::ElasticRouter;
using router::ErConfig;
using router::ErEndpoint;

namespace {

struct RunResult {
    double handoffUs;  ///< when the producer's injection backlog drained
    double drainUs;    ///< when the message fully arrived
    int peakBuffered;
};

RunResult
run(CreditPolicy policy, int total_budget)
{
    sim::EventQueue eq;
    ErConfig cfg;
    cfg.numPorts = 2;
    cfg.numVcs = 4;
    cfg.policy = policy;
    cfg.perVcReservedFlits = 1;
    cfg.sharedPoolFlits = total_budget - cfg.numVcs;
    cfg.staticPerVcFlits = total_budget / cfg.numVcs;
    ElasticRouter er(eq, cfg);

    ErEndpoint producer(eq, er, 0, 0);
    ErEndpoint consumer(eq, er, 1, 1);
    er.setOutputSink(0, &producer);
    er.setOutputSink(1, &consumer);
    er.setOutputCyclesPerFlit(1, 8);  // slow consumer

    bool done = false;
    consumer.setMessageHandler(
        [&done](const router::ErMessagePtr &) { done = true; });

    producer.sendMessage(1, 0, 4096);  // 128-flit burst on VC 0

    RunResult result{};
    result.handoffUs = -1;
    while (eq.step()) {
        if (result.handoffUs < 0 && producer.backlogFlits() == 0)
            result.handoffUs = sim::toMicros(eq.now());
    }
    if (!done)
        sim::panic("ablation A1: message not delivered");
    result.drainUs = sim::toMicros(eq.now());
    result.peakBuffered = er.peakBufferedFlits();
    return result;
}

}  // namespace

int
main()
{
    std::printf("=== Ablation A1: Elastic Router credit policy ===\n\n");

    std::printf("-- Experiment 1: producer hand-off time for a 128-flit "
                "single-VC burst --\n");
    std::printf("   (2 ports, 4 VCs, slow consumer; equal total buffer "
                "budget per input port)\n\n");
    std::printf("  %8s | %13s %11s | %13s %11s\n", "budget",
                "elastic(us)", "peak flits", "static(us)", "peak flits");
    for (int budget : {8, 16, 32, 64, 128}) {
        const RunResult e = run(CreditPolicy::kElastic, budget);
        const RunResult s = run(CreditPolicy::kStatic, budget);
        std::printf("  %8d | %13.2f %11d | %13.2f %11d\n", budget,
                    e.handoffUs, e.peakBuffered, s.handoffUs,
                    s.peakBuffered);
    }

    std::printf("\n-- Experiment 2: smallest budget achieving hand-off "
                "<= 4 us --\n");
    int need_e = -1, need_s = -1;
    for (int budget = 4; budget <= 512; budget += 4) {
        if (need_e < 0 &&
            run(CreditPolicy::kElastic, budget).handoffUs <= 4.0)
            need_e = budget;
        if (need_s < 0 &&
            run(CreditPolicy::kStatic, budget).handoffUs <= 4.0)
            need_s = budget;
        if (need_e > 0 && need_s > 0)
            break;
    }
    std::printf("  elastic: %d flits/port;  static: %d flits/port  "
                "(elastic needs ~1/numVcs the buffering)\n", need_e,
                need_s);

    std::printf("\nconclusion: the shared pool lets a hot VC borrow idle "
                "VCs' buffering, reducing the\naggregate flit-buffer "
                "requirement for the same hand-off performance — the "
                "paper's ER rationale.\n");
    return 0;
}
