/**
 * @file
 * Ablation A3: failure blast radius — bump-in-the-wire vs the torus.
 *
 * The paper's architectural argument (Sections I/II/V-C): in the 6x8
 * torus, a failed FPGA forces neighbours to re-route around it (extra
 * hops and latency) and certain failure patterns isolate healthy nodes;
 * in the Configurable Cloud, an FPGA failure affects only its own
 * server — every other FPGA pair keeps its latency, and the HaaS pool
 * simply swaps in one of the abundant spares.
 */
#include <cstdio>
#include <memory>

#include "core/cloud.hpp"
#include "sim/stats.hpp"
#include "torus/torus.hpp"

using namespace ccsim;

namespace {

struct NullRole : fpga::Role {
    int port = -1;
    std::string name() const override { return "null"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &) override {}
};

double
ltlRttUs(core::ConfigurableCloud &cloud, sim::EventQueue &eq, int src,
         int dst, NullRole &role)
{
    auto ch = cloud.openLtl(src, dst, role.port);
    auto *engine = cloud.shell(src).ltlEngine();
    const std::size_t before = engine->rttUs().count();
    for (int i = 0; i < 50; ++i) {
        eq.scheduleAfter(i * 20 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 64);
                         });
    }
    eq.runFor(sim::fromMillis(2));
    const auto &samples = engine->rttUs().raw();
    double sum = 0;
    for (std::size_t i = before; i < samples.size(); ++i)
        sum += samples[i];
    return sum / static_cast<double>(samples.size() - before);
}

}  // namespace

int
main()
{
    std::printf("=== Ablation A3: failure blast radius ===\n\n");

    // ---- Torus: neighbours pay for a failure ------------------------
    std::printf("-- 6x8 torus (Catapult v1) --\n");
    torus::TorusNetwork torus;
    const torus::TorusCoord a{0, 0}, b{2, 0}, victim{1, 0};
    const double before = sim::toMicros(*torus.roundTripLatency(a, b));
    torus.failNode(victim);
    const double after = sim::toMicros(*torus.roundTripLatency(a, b));
    std::printf("  neighbour pair (0,0)<->(2,0) RTT: %.2f us -> %.2f us "
                "after (1,0) fails (+%.0f%%)\n", before, after,
                100.0 * (after - before) / before);

    // Pathological pattern: surrounding failures isolate a healthy node.
    torus::TorusNetwork torus2;
    torus2.failNode({1, 2});
    torus2.failNode({3, 2});
    torus2.failNode({2, 1});
    torus2.failNode({2, 3});
    std::printf("  4 failures around (2,2): healthy node isolated, "
                "reachable set %d/47\n",
                torus2.reachableNodes({0, 0}) - 1);

    // ---- Configurable Cloud: zero neighbour impact -------------------
    std::printf("\n-- Configurable Cloud (bump-in-the-wire + LTL) --\n");
    sim::EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 8;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    cfg.createNics = false;
    cfg.shellTemplate.roleSlots = 4;
    cfg.shellTemplate.ltl.maxConnections = 32;
    core::ConfigurableCloud cloud(eq, cfg);

    NullRole r1, r2;
    cloud.shell(2).addRole(&r1);
    const double rtt_before = ltlRttUs(cloud, eq, 0, 2, r1);

    // Host 1's FPGA — sitting between hosts 0 and 2 in the rack — goes
    // dark (buggy image: its own server is cut off).
    cloud.shell(1).loadApplicationImage(
        fpga::FpgaImage{"buggy", false, 0, true});
    eq.runFor(3 * sim::kSecond);

    cloud.shell(2).addRole(&r2);
    const double rtt_after = ltlRttUs(cloud, eq, 0, 2, r2);
    std::printf("  pair 0<->2 LTL RTT: %.2f us -> %.2f us after host 1's "
                "FPGA fails (%+.1f%%)\n", rtt_before, rtt_after,
                100.0 * (rtt_after - rtt_before) / rtt_before);
    std::printf("  only the failed FPGA's own server is unreachable; "
                "no re-routing, no isolation of healthy nodes\n");

    // HaaS replaces the failed device from the spare pool.
    cloud.resourceManager().reportFailure(1);
    auto lease = cloud.resourceManager().acquire("svc", 1);
    std::printf("  HaaS: node 1 marked failed; replacement lease "
                "granted on host %d (%d spares left)\n",
                lease ? lease->hosts.front() : -1,
                cloud.resourceManager().freeCount());

    std::printf("\nconclusion: the torus couples failures to healthy "
                "neighbours (extra hops, possible isolation);\nthe "
                "bump-in-the-wire decouples them — the paper's core "
                "resilience argument for Catapult v2.\n");
    return 0;
}
