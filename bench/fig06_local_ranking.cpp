/**
 * @file
 * Reproduces Figure 6: 99th-percentile latency versus throughput of
 * ranking-service queries on a single server, with and without the local
 * FPGA (FFU + DPF offload).
 *
 * As in the paper, both axes are normalized: the production 99% latency
 * target and the typical software-mode throughput are 1.0. The headline
 * result is that at the target tail latency the FPGA-accelerated server
 * sustains 2.25x the software throughput, while the FPGA itself remains
 * underutilized (the software portion saturates the host first).
 */
#include <cstdio>
#include <vector>

#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "sim/event_queue.hpp"

using namespace ccsim;

namespace {

struct Point {
    double qps;
    double p99_ms;
    double completed_qps;
    double fpga_util;
};

Point
runPoint(double qps, bool use_fpga, double measure_seconds = 15.0)
{
    sim::EventQueue eq;
    std::unique_ptr<host::LocalFpgaAccelerator> accel;
    if (use_fpga)
        accel = std::make_unique<host::LocalFpgaAccelerator>(eq);
    host::RankingServer server(eq, host::RankingServiceParams{},
                               accel.get(), 42);
    host::PoissonLoadGenerator gen(eq, qps, [&] { server.submitQuery(); },
                                   7);
    gen.start();
    eq.runUntil(sim::fromSeconds(3.0));  // warm-up
    server.clearStats();
    const auto completed_before = server.completed();
    eq.runFor(sim::fromSeconds(measure_seconds));
    gen.stop();

    Point p;
    p.qps = qps;
    p.p99_ms = server.latencyMs().percentile(99.0);
    p.completed_qps =
        static_cast<double>(server.completed() - completed_before) /
        measure_seconds;
    p.fpga_util = accel ? accel->utilization(eq.now()) : 0.0;
    return p;
}

/** Max offered load whose p99 stays at or below the target. */
double
throughputAtTarget(const std::vector<Point> &curve, double target_ms)
{
    double best = 0.0;
    for (const auto &p : curve) {
        if (p.p99_ms <= target_ms)
            best = std::max(best, p.completed_qps);
    }
    return best;
}

}  // namespace

int
main()
{
    std::printf("=== Figure 6: 99%% latency vs throughput, single "
                "ranking server ===\n\n");

    // Production operating point for normalization: software at ~93% of
    // its saturation throughput (capacity = 12 cores / 3.6 ms = 3333/s).
    const double kSoftwareNominalQps = 3100.0;

    std::vector<double> sw_rates = {500,  1000, 1500, 2000, 2400, 2800,
                                    3000, 3100, 3200, 3300, 3400};
    std::vector<double> fpga_rates = {500,  1500, 2500, 3500, 4500,
                                      5500, 6200, 6600, 6800, 6900,
                                      7000, 7100, 7300, 7600};

    std::vector<Point> sw_curve, fpga_curve;
    for (double r : sw_rates)
        sw_curve.push_back(runPoint(r, false));
    for (double r : fpga_rates)
        fpga_curve.push_back(runPoint(r, true));

    // Normalize: latency by the software p99 at the nominal point,
    // throughput by the nominal software throughput.
    const Point norm_point = runPoint(kSoftwareNominalQps, false, 30.0);
    const double target_ms = norm_point.p99_ms;

    std::printf("normalization: software nominal = %.0f qps, target p99 "
                "= %.2f ms\n\n", kSoftwareNominalQps, target_ms);

    std::printf("-- Software --\n");
    std::printf("  %12s %12s %14s %14s\n", "offered qps", "p99 (ms)",
                "norm tput", "norm p99");
    for (const auto &p : sw_curve) {
        std::printf("  %12.0f %12.2f %14.2f %14.2f\n", p.qps, p.p99_ms,
                    p.completed_qps / kSoftwareNominalQps,
                    p.p99_ms / target_ms);
    }
    std::printf("\n-- Local FPGA (FFU+DPF offloaded) --\n");
    std::printf("  %12s %12s %14s %14s %10s\n", "offered qps", "p99 (ms)",
                "norm tput", "norm p99", "fpga util");
    for (const auto &p : fpga_curve) {
        std::printf("  %12.0f %12.2f %14.2f %14.2f %9.0f%%\n", p.qps,
                    p.p99_ms, p.completed_qps / kSoftwareNominalQps,
                    p.p99_ms / target_ms, 100.0 * p.fpga_util);
    }

    const double sw_at_target = throughputAtTarget(sw_curve, target_ms);
    const double fpga_at_target = throughputAtTarget(fpga_curve, target_ms);
    std::printf("\nthroughput at target 99%% latency:\n");
    std::printf("  software:   %.2f (normalized)\n",
                sw_at_target / kSoftwareNominalQps);
    std::printf("  local FPGA: %.2f (normalized)\n",
                fpga_at_target / kSoftwareNominalQps);
    std::printf("  gain: %.2fx   (paper: 2.25x; fewer than half the "
                "servers for the same load)\n",
                fpga_at_target / std::max(sw_at_target, 1.0));
    return 0;
}
