/**
 * @file
 * Telemetry-overhead benchmark: the Figure 8 ranking workload run three
 * times under identical seeds —
 *
 *   off       bare simulation, no time-series rollup;
 *   windows   TimeSeriesHub rolling every registry metric into 10 ms
 *             windows, JSONL export on;
 *   slo       windows plus an SloEngine evaluating latency and
 *             throughput burn rates every window.
 *
 * Asserts the two telemetry invariants the dashboard work relies on:
 * rolling only ever *reads* simulation state (identical query counts in
 * all three runs), and the rollup is cheap (< 5% wall-clock overhead,
 * min-of-3 runs per config). Headline numbers land in BENCH_obs.json.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "bench_json.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/event_queue.hpp"
#include "sim/logging.hpp"

using namespace ccsim;

namespace {

enum class Mode { kOff, kWindows, kSlo };

struct RunResult {
    double wallSeconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t queries = 0;
    std::uint64_t windows = 0;
    std::uint64_t tsLines = 0;
    std::uint64_t alerts = 0;
};

RunResult
runWorkload(Mode mode, double settle_s, double measure_s)
{
    sim::EventQueue eq;
    obs::Observability hub;
    auto accel = std::make_unique<host::LocalFpgaAccelerator>(eq);
    host::RankingServer server(eq, host::RankingServiceParams{},
                               accel.get(), 21);
    server.attachObservability(&hub);
    // Heavy FPGA-backed load: the base simulation must dominate wall
    // time or the overhead ratio measures the hub against an idle loop.
    host::PoissonLoadGenerator gen(eq, 50000.0,
                                   [&] { server.submitQuery(); }, 23);

    std::unique_ptr<obs::TimeSeriesHub> ts;
    std::unique_ptr<obs::SloEngine> slo;
    std::ostringstream jsonl;
    if (mode != Mode::kOff) {
        ts = std::make_unique<obs::TimeSeriesHub>(
            obs::TimeSeriesConfig{}.withWindow(10 * sim::kMillisecond));
        ts->watchRegistry(&hub.registry);
        ts->registerSelfProbes(hub.registry);
        ts->exportTo(&jsonl);
        ts->startSampling(eq);
    }
    if (mode == Mode::kSlo) {
        slo = std::make_unique<obs::SloEngine>(*ts);
        obs::SloObjective lat;
        lat.name = "rank_p999";
        slo->addObjective(
            lat.on("host.rank.latency_ms")
                .where(obs::SloStat::kP999, obs::SloCmp::kLt, 12.0)
                .withBudget(0.05)
                .withWindows(60, 5)
                .withBurnThreshold(4.0));
        obs::SloObjective thr;
        thr.name = "rank_goodput";
        slo->addObjective(
            thr.on("host.rank.latency_ms")
                .where(obs::SloStat::kRate, obs::SloCmp::kGt, 100.0)
                .withBudget(0.10)
                .withWindows(60, 5)
                .withBurnThreshold(4.0));
        slo->attachObservability(hub.registry);
    }

    const auto t0 = std::chrono::steady_clock::now();
    gen.start();
    eq.runFor(sim::fromSeconds(settle_s + measure_s));
    gen.stop();
    if (ts)
        ts->stopSampling();
    eq.runAll();

    RunResult r;
    r.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    r.events = eq.eventsExecuted();
    r.queries = server.latencyMs().count();
    if (ts) {
        r.windows = ts->windowsClosed();
        r.tsLines = ts->exportedLines();
    }
    if (slo)
        r.alerts = slo->alertsFired();
    return r;
}

const char *
modeName(Mode m)
{
    switch (m) {
    case Mode::kOff:
        return "off";
    case Mode::kWindows:
        return "windows";
    case Mode::kSlo:
        return "windows+slo";
    }
    return "?";
}

}  // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            sim::fatalf("bench_obs: unknown flag ", argv[i],
                        " (usage: [--quick])");
    }
    const double settle_s = quick ? 0.3 : 0.5;
    const double measure_s = quick ? 1.5 : 4.0;

    std::printf("=== Telemetry overhead: fig08 ranking workload x "
                "{off, windows, windows+slo} ===\n\n");
    std::printf("  %.1f s simulated per run, 10 ms windows, min of 3 "
                "runs per config\n\n", settle_s + measure_s);

    // Min-of-3 wall time per config is robust to scheduler noise; the
    // simulated workload itself is identical in every run.
    RunResult best[3];
    for (int rep = 0; rep < 3; ++rep) {
        for (Mode m : {Mode::kOff, Mode::kWindows, Mode::kSlo}) {
            const RunResult r = runWorkload(m, settle_s, measure_s);
            RunResult &b = best[static_cast<int>(m)];
            if (rep == 0 || r.wallSeconds < b.wallSeconds)
                b = r;
        }
    }

    std::printf("  %-12s %10s %12s %10s %10s %8s\n", "config", "wall s",
                "events/s", "windows", "ts lines", "alerts");
    for (Mode m : {Mode::kOff, Mode::kWindows, Mode::kSlo}) {
        const RunResult &r = best[static_cast<int>(m)];
        std::printf("  %-12s %10.2f %12.0f %10llu %10llu %8llu\n",
                    modeName(m), r.wallSeconds,
                    static_cast<double>(r.events) / r.wallSeconds,
                    static_cast<unsigned long long>(r.windows),
                    static_cast<unsigned long long>(r.tsLines),
                    static_cast<unsigned long long>(r.alerts));
    }

    // Rolling must not perturb the simulation: same queries completed.
    const RunResult &off = best[0], &win = best[1], &wslo = best[2];
    if (win.queries != off.queries || wslo.queries != off.queries)
        sim::fatalf("bench_obs: telemetry perturbed the workload (",
                    off.queries, " / ", win.queries, " / ", wslo.queries,
                    " queries completed)");
    std::printf("\nworkload invariance: OK (%llu queries in every "
                "config)\n",
                static_cast<unsigned long long>(off.queries));

    const double overheadWin = win.wallSeconds / off.wallSeconds - 1.0;
    const double overheadSlo = wslo.wallSeconds / off.wallSeconds - 1.0;
    std::printf("rollup overhead: windows %+.2f%%, windows+slo %+.2f%% "
                "(budget < 5%%)\n", 100.0 * overheadWin,
                100.0 * overheadSlo);
    if (overheadWin >= 0.05 || overheadSlo >= 0.05)
        sim::fatalf("bench_obs: telemetry overhead exceeds the 5% "
                    "budget (windows ", 100.0 * overheadWin,
                    "%, windows+slo ", 100.0 * overheadSlo, "%)");

    const std::string prefix =
        quick ? "bench_obs_quick." : "bench_obs.";
    bench::BenchValues out;
    out[prefix + "off_events_per_s"] =
        static_cast<double>(off.events) / off.wallSeconds;
    out[prefix + "windows_events_per_s"] =
        static_cast<double>(win.events) / win.wallSeconds;
    out[prefix + "slo_events_per_s"] =
        static_cast<double>(wslo.events) / wslo.wallSeconds;
    out[prefix + "windows_overhead_pct"] = 100.0 * overheadWin;
    out[prefix + "slo_overhead_pct"] = 100.0 * overheadSlo;
    out[prefix + "windows_closed"] = static_cast<double>(win.windows);
    out[prefix + "ts_lines"] = static_cast<double>(win.tsLines);
    bench::mergeBenchJson("BENCH_obs.json", out);
    std::printf("wrote BENCH_obs.json (%s*)\n", prefix.c_str());
    return 0;
}
