/**
 * @file
 * Ablation A6: the end-to-end failure detection & recovery protocol
 * under a chaos soak.
 *
 * A4 (ablation_fault_recovery) showed one hand-wired failover: the bench
 * itself subscribed to LTL failure callbacks and re-pointed the client.
 * This ablation exercises the *autonomous* protocol stack added on top:
 *
 *  - a haas::HealthMonitor detects every failure (active heartbeats +
 *    passive LTL timeout streaks) and reports/repairs nodes on the RM,
 *  - the ServiceManager auto-heals instances through its RM
 *    subscriptions,
 *  - the frontend runs per-query deadlines, bounded retry with backoff,
 *    and hedged requests to a replica instance, and
 *  - one outage is a *graceful* reconfiguration: the node's LTL engine
 *    quiesces (drain, then reject) before going dark.
 *
 * The fault injector runs with selfReport(false): it only manipulates
 * hardware state. Every detection and repair in this run comes from the
 * monitor. Asserted from observability counters alone:
 *
 *  - every node-dark fault is detected within the monitor's bound,
 *  - zero lost queries (submitted == completed, nothing in flight),
 *  - the flow-trace attribution invariant holds on every exemplar,
 *  - post-repair p99 within 5% of the pre-fault baseline (full run).
 *
 * Deterministic per seed: same seed, same timeline, same table. Pass
 * --quick for the CI smoke run (detection/loss/attribution still
 * enforced; the p99 threshold needs the full run's sample counts).
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "fault/fault.hpp"
#include "haas/health_monitor.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "obs/flow_trace.hpp"
#include "obs/metrics.hpp"
#include "roles/ranking/ranking_role.hpp"
#include "sim/event_queue.hpp"

using namespace ccsim;

namespace {

struct Sample {
    sim::TimePs doneAt;
    double ms;
};

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        std::max(0.0, p / 100.0 * static_cast<double>(v.size()) - 1.0));
    return v[std::min(idx, v.size() - 1)];
}

struct PhaseStats {
    std::size_t n = 0;
    double mean = 0, p50 = 0, p99 = 0, max = 0;
};

PhaseStats
phaseStats(const std::vector<Sample> &samples, sim::TimePs from,
           sim::TimePs to)
{
    std::vector<double> v;
    for (const auto &s : samples)
        if (s.doneAt >= from && s.doneAt < to)
            v.push_back(s.ms);
    PhaseStats ps;
    ps.n = v.size();
    if (v.empty())
        return ps;
    double sum = 0;
    for (double x : v)
        sum += x;
    ps.mean = sum / static_cast<double>(v.size());
    ps.p50 = percentile(v, 50);
    ps.p99 = percentile(v, 99);
    ps.max = *std::max_element(v.begin(), v.end());
    return ps;
}

/** One frontend data-plane attachment to a service instance. */
struct Attachment {
    core::LtlChannel req, rep;
    std::unique_ptr<roles::RemoteRankingClient> client;
    int fwd = -1;  ///< forwarder-pool slot
};

}  // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    std::printf("=== Ablation A6: chaos soak of the autonomous failure "
                "detection & recovery protocol ===%s\n\n",
                quick ? "  [quick]" : "");

    const double kQps = 2000.0;
    const double warm_s = quick ? 0.2 : 0.5;
    const double pre_s = quick ? 0.3 : 2.0;   // healthy baseline window
    const double post_s = quick ? 0.4 : 2.5;  // post-repair window
    const sim::TimePs kDark = sim::fromMillis(25);  // outage windows
    const sim::TimePs kFlap = 600 * sim::kMicrosecond;

    sim::EventQueue eq;  // must outlive the observability hub
    obs::Observability hub;

    // A small pod: 8 FPGA-equipped servers.
    net::TopologyConfig topo;
    topo.hostsPerRack = 4;
    topo.racksPerPod = 2;
    topo.l1PerPod = 2;
    topo.pods = 1;
    topo.l2Count = 1;
    fpga::ShellConfig shell;
    shell.ltl.maxConnections = 32;
    shell.roleSlots = 4;  // the frontend hosts a forwarder pool
    const core::CloudConfig cfg = core::CloudConfig{}
                                      .withTopology(topo)
                                      .withShellTemplate(shell)
                                      .withObservability(&hub)
                                      .withFlowTracing(64);
    core::ConfigurableCloud cloud(eq, cfg);
    auto &rm = cloud.resourceManager();

    // The frontend host is leased out of the pool so the accelerator
    // service can never land on it.
    auto frontend_lease = rm.acquire("ranking-frontend", 1);
    if (!frontend_lease)
        sim::fatal("ablation: empty pool");
    const int client = frontend_lease->hosts.front();

    // Ranking accelerator service: two instances, self-healing.
    std::vector<std::unique_ptr<roles::RankingRole>> role_pool;
    haas::ServiceManager sm(eq, rm, "rank", [&](int) {
        roles::RankingRoleParams rp;
        rp.occupancyPerDoc = 300 * sim::kNanosecond;
        rp.fixedLatency = 40 * sim::kMicrosecond;
        role_pool.push_back(std::make_unique<roles::RankingRole>(eq, rp));
        return role_pool.back().get();
    });
    sm.attachObservability(&hub);
    sm.enableAutoHeal(2);
    if (!sm.deploy(2))
        sim::fatal("ablation: deploy failed");
    const int v0 = sm.instances()[0];
    const int v1 = sm.instances()[1];

    // The failure detector: active heartbeats + passive LTL suspicion.
    haas::HealthMonitor hm(
        eq, rm,
        haas::HealthMonitorConfig{}
            .withHeartbeat(100 * sim::kMicrosecond, 10 * sim::kMicrosecond)
            .withSuspicion(3.0, 1.0, 1.0));
    hm.attachObservability(&hub);
    cloud.attachHealthMonitor(hm);
    hm.start();

    // ---- frontend data plane -------------------------------------------
    constexpr int kForwarders = 3;
    std::vector<std::unique_ptr<roles::ForwarderRole>> fwds;
    std::vector<bool> fwdBusy(kForwarders, false);
    for (int i = 0; i < kForwarders; ++i) {
        fwds.push_back(std::make_unique<roles::ForwarderRole>());
        if (cloud.shell(client).addRole(fwds.back().get()) < 0)
            sim::fatal("ablation: forwarder does not fit");
    }

    host::RankingServer server(eq, host::RankingServiceParams{}, nullptr,
                               31);
    server.attachObservability(&hub, "rank");
    // The deadline sits above the healthy end-to-end accel tail (~2.6 ms
    // completion p99) so it only expires during real outages; the hedge
    // delay adapts to the observed accel-stage p99.
    server.setRetryPolicy(
        host::QueryRetryPolicy{}
            .withDeadline(sim::fromMillis(3), 3)
            .withBackoff(200 * sim::kMicrosecond, 0.2)
            .withHedge()  // adaptive delay
            .withHedgeQuantile(99.0, 500 * sim::kMicrosecond));

    std::map<int, Attachment> attached;
    auto reconcile = [&] {
        const auto insts = sm.instances();
        // Detach instances the control plane has replaced (the RAII
        // channels close the dead connections).
        for (auto it = attached.begin(); it != attached.end();) {
            if (std::find(insts.begin(), insts.end(), it->first) ==
                insts.end()) {
                fwdBusy[it->second.fwd] = false;
                it = attached.erase(it);
            } else {
                ++it;
            }
        }
        // Attach new instances.
        for (int inst : insts) {
            if (attached.count(inst))
                continue;
            int f = -1;
            for (int i = 0; i < kForwarders; ++i)
                if (!fwdBusy[i])
                    f = f < 0 ? i : f;
            if (f < 0)
                break;
            Attachment a;
            a.req = cloud.openLtl(client, inst, fpga::kErPortRole0);
            a.rep = cloud.openLtl(inst, client, fwds[f]->port());
            a.client = std::make_unique<roles::RemoteRankingClient>(
                eq, cloud.shell(client), *fwds[f], a.req.sendConn(),
                a.rep.sendConn());
            a.fwd = f;
            fwdBusy[f] = true;
            attached.emplace(inst, std::move(a));
        }
        // Primary = first healthy attachment in instance order.
        host::FeatureAccelerator *primary = nullptr;
        for (int inst : insts) {
            auto it = attached.find(inst);
            if (it != attached.end() && !it->second.req.failed()) {
                primary = it->second.client.get();
                break;
            }
        }
        server.setAccelerator(primary);
    };
    server.setReplicaPicker([&]() -> host::FeatureAccelerator * {
        for (auto &[inst, a] : attached)
            if (a.client.get() != server.currentAccelerator() &&
                !a.req.failed())
                return a.client.get();
        return nullptr;
    });
    reconcile();

    bool reconciling = true;
    std::function<void()> reconcileLoop = [&] {
        if (!reconciling)
            return;
        reconcile();
        eq.scheduleAfter(500 * sim::kMicrosecond, [&] { reconcileLoop(); });
    };
    eq.scheduleAfter(500 * sim::kMicrosecond, [&] { reconcileLoop(); });

    // ---- load ----------------------------------------------------------
    std::vector<Sample> samples;
    std::uint64_t submitted = 0;
    host::PoissonLoadGenerator gen(
        eq, kQps,
        [&] {
            ++submitted;
            server.submitQuery([&](sim::TimePs lat) {
                samples.push_back({eq.now(), sim::toMillis(lat)});
            });
        },
        37);

    // ---- chaos script (hardware-only: selfReport off) ------------------
    const sim::TimePs t_warm = sim::fromSeconds(warm_s);
    const sim::TimePs t_g = t_warm + sim::fromSeconds(pre_s);
    const sim::TimePs t_p = t_g + sim::fromMillis(80);
    const sim::TimePs t_c = t_p + sim::fromMillis(80);
    const sim::TimePs t_f = t_c + sim::fromMillis(60);

    fault::FaultInjector injector(
        eq, cloud,
        fault::FaultConfig{}
            .withSeed(7)
            .withSelfReport(false)
            .withGracefulReconfig(t_g, v0, kDark)
            .withReconfigPause(t_p, v1, kDark)
            .withCorruptionBurst(t_c, client, 0.08,
                                 400 * sim::kMicrosecond)
            .withHostLinkFlap(t_f, v0, kFlap));
    injector.arm();

    // Node-dark faults the monitor must detect. The graceful one drains
    // the victim's LTL engine before cutting, so its clock starts up to
    // one drain timeout late.
    struct DarkFault {
        const char *what;
        int host;
        sim::TimePs at;
        sim::TimePs bound;
    };
    const sim::TimePs kBound = hm.detectionBound();
    const sim::TimePs kDrainGrace = shell.ltl.quiesceDrainTimeout;
    const std::vector<DarkFault> darkFaults = {
        {"graceful reconfig", v0, t_g, kBound + kDrainGrace},
        {"reconfig pause", v1, t_p, kBound},
        {"link flap", v0, t_f, kBound},
    };

    // Record when the monitor's failure report reaches the RM for each
    // victim (reportFailure marks the node's FpgaManager unhealthy).
    // Polling that flag (rather than RM failure callbacks) covers nodes
    // that are back in the free pool when they fail: the RM only
    // notifies lease holders, but the detection bound applies to every
    // registered node.
    std::vector<sim::TimePs> detectedAt(darkFaults.size(), -1);
    std::function<void(std::size_t)> pollDetect = [&](std::size_t i) {
        if (detectedAt[i] >= 0)
            return;
        const haas::FpgaManager *fm = rm.manager(darkFaults[i].host);
        if (fm != nullptr && !fm->status().healthy) {
            detectedAt[i] = eq.now();
            return;
        }
        if (eq.now() - darkFaults[i].at > 4 * darkFaults[i].bound)
            return;  // give up: "never detected"
        eq.scheduleAfter(10 * sim::kMicrosecond, [&, i] { pollDetect(i); });
    };
    for (std::size_t i = 0; i < darkFaults.size(); ++i)
        eq.schedule(darkFaults[i].at, [&, i] { pollDetect(i); });

    // ---- timeline, reported from the observability registry ------------
    struct Entry {
        sim::TimePs at;
        std::string text;
    };
    std::vector<Entry> timeline;
    auto probe = [&](const std::string &p) {
        return hub.registry.probeValue(p);
    };
    char buf[256];
    auto snap = [&](const char *text) {
        std::snprintf(buf, sizeof buf,
                      "%s: haas.health.detections=%.0f "
                      "haas.health.suspected=%.0f haas.failed=%.0f "
                      "haas.sm.rank.failovers=%.0f "
                      "haas.sm.rank.auto_heals=%.0f",
                      text, probe("haas.health.detections"),
                      probe("haas.health.suspected"), probe("haas.failed"),
                      probe("haas.sm.rank.failovers"),
                      probe("haas.sm.rank.auto_heals"));
        timeline.push_back({eq.now(), buf});
    };
    eq.schedule(t_g, [&] { snap("graceful reconfig begins (quiesce)"); });
    eq.schedule(t_g + kDark + kBound * 2,
                [&] { snap("graceful window over"); });
    eq.schedule(t_p, [&] { snap("ungraceful reconfig pause hits"); });
    eq.schedule(t_p + kDark + kBound * 2, [&] { snap("pause over"); });
    eq.schedule(t_c, [&] { snap("corruption burst on frontend link"); });
    eq.schedule(t_f + kFlap + kBound * 2, [&] { snap("flap over"); });

    // ---- run -----------------------------------------------------------
    gen.start();
    const sim::TimePs t_end = t_f + kFlap + sim::fromMillis(20) +
                              sim::fromSeconds(post_s);
    eq.runUntil(t_end);
    gen.stop();
    eq.runFor(sim::fromMillis(300));  // drain in-flight queries
    reconciling = false;
    hm.stop();
    eq.runFor(sim::fromMillis(1));  // let the last loop events expire

    // ---- report --------------------------------------------------------
    std::printf("timeline (all figures read live from the obs "
                "registry):\n");
    for (const auto &e : timeline)
        std::printf("  [%10.1f us] %s\n", sim::toMicros(e.at),
                    e.text.c_str());

    std::printf("\ndetector: heartbeats=%.0f misses=%.0f detections=%.0f "
                "rejoins=%.0f streak_reports=%.0f (bound %.0f us)\n",
                probe("haas.health.heartbeats"),
                probe("haas.health.misses"),
                probe("haas.health.detections"),
                probe("haas.health.rejoins"),
                probe("haas.health.streak_reports"),
                sim::toMicros(kBound));
    std::printf("frontend: deadline_expired=%.0f retries=%.0f hedges=%.0f "
                "hedge_wins=%.0f sw_fallbacks=%.0f hedge_delay=%.0f us\n",
                probe("host.rank.retry.deadline_expired"),
                probe("host.rank.retry.attempts"),
                probe("host.rank.retry.hedges"),
                probe("host.rank.retry.hedge_wins"),
                probe("host.rank.retry.sw_fallbacks"),
                probe("host.rank.retry.hedge_delay_us"));
    const std::string v0ltl = "ltl.node" + std::to_string(v0);
    std::printf("victim LTL (node %d): quiesces=%.0f sends_rejected=%.0f "
                "rejects_sent=%.0f\n",
                v0, probe(v0ltl + ".quiesces"),
                probe(v0ltl + ".sends_rejected"),
                probe(v0ltl + ".rejects_sent"));

    bool ok = true;

    // 1. Every node-dark fault detected within the monitor's bound.
    std::printf("\ndetection latency per injected dark fault:\n");
    for (std::size_t i = 0; i < darkFaults.size(); ++i) {
        const DarkFault &f = darkFaults[i];
        if (detectedAt[i] < 0) {
            std::printf("  %-18s host %d at %10.1f us: NEVER DETECTED\n",
                        f.what, f.host, sim::toMicros(f.at));
            ok = false;
            continue;
        }
        const sim::TimePs took = detectedAt[i] - f.at;
        const bool in_bound = took <= f.bound;
        std::printf("  %-18s host %d at %10.1f us: detected in %8.1f us "
                    "(bound %8.1f us) %s\n",
                    f.what, f.host, sim::toMicros(f.at),
                    sim::toMicros(took), sim::toMicros(f.bound),
                    in_bound ? "OK" : "TOO SLOW");
        if (!in_bound)
            ok = false;
    }
    if (ok)
        std::printf("detection within bound: OK\n");

    // 2. Zero lost queries.
    const std::uint64_t done = samples.size();
    std::printf("\nqueries: submitted=%llu completed=%llu in_flight=%llu "
                "(host.rank.completed=%.0f)\n",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(server.inFlight()),
                probe("host.rank.completed"));
    if (done != submitted || server.inFlight() != 0) {
        std::printf("FAIL: lost queries: %lld\n",
                    static_cast<long long>(submitted - done));
        ok = false;
    } else {
        std::printf("lost queries: 0\n");
    }

    // 3. Attribution invariant on every kept exemplar.
    std::uint64_t checked = 0;
    for (const obs::FlowTrace *t : hub.flows.worstFirst()) {
        const obs::LatencyAttribution a = obs::attributeLatency(*t);
        if (!a.consistent()) {
            std::printf("FAIL: attribution invariant violated for trace "
                        "%llu\n",
                        static_cast<unsigned long long>(t->traceId));
            ok = false;
        }
        ++checked;
    }
    if (ok)
        std::printf("attribution invariant: OK (%llu traces)\n",
                    static_cast<unsigned long long>(checked));

    // 4. Latency by phase; post-repair p99 near baseline.
    const sim::TimePs post_from = t_f + kFlap + sim::fromMillis(20);
    const PhaseStats pre = phaseStats(samples, t_warm, t_g);
    const PhaseStats during = phaseStats(samples, t_g, post_from);
    const PhaseStats post = phaseStats(samples, post_from, t_end);
    std::printf("\nlatency by phase (query completion time, ms):\n");
    std::printf("  %-22s %8s %8s %8s %8s %8s\n", "phase", "queries",
                "mean", "p50", "p99", "max");
    auto row = [](const char *name, const PhaseStats &s) {
        std::printf("  %-22s %8zu %8.2f %8.2f %8.2f %8.2f\n", name, s.n,
                    s.mean, s.p50, s.p99, s.max);
    };
    row("pre-fault (accel)", pre);
    row("during chaos", during);
    row("post-repair", post);

    const double delta =
        pre.p99 > 0 ? (post.p99 - pre.p99) / pre.p99 * 100.0 : 0.0;
    std::printf("\npost-repair p99 vs pre-fault baseline: %+.1f%% "
                "(%.2f ms -> %.2f ms)\n",
                delta, pre.p99, post.p99);
    if (!quick && std::abs(delta) > 5.0) {
        std::printf("FAIL: post-repair p99 outside 5%% of baseline\n");
        ok = false;
    }
    if (!quick && during.n == 0) {
        std::printf("FAIL: no queries completed during the chaos "
                    "window\n");
        ok = false;
    }

    if (ok)
        std::printf("\nconclusion: three node-dark faults, one corruption "
                    "burst; every failure\ndetected autonomously within "
                    "the bound, every query answered, and the\nself-"
                    "healed service returned to within %.1f%% of the "
                    "baseline p99.\n",
                    std::abs(delta));
    return ok ? 0 : 1;
}
