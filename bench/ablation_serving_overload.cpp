/**
 * @file
 * Ablation A7: the cluster serving layer under overload and grey failure.
 *
 * Two phases, both pure functions of their seeds:
 *
 *  1. **Goodput under overload** — a ranking frontend drives a Poisson
 *     query stream through a ClusterClient over four pipelined FPGA
 *     accelerators, sweeping offered load from 0.5x to 2x the frontend's
 *     saturation point, with the token-bucket admission controller off
 *     and on. Goodput counts only queries answered within the SLO.
 *     Without admission, overload queues every query past its deadline
 *     and goodput falls off a cliff; with admission, excess arrivals are
 *     shed up front and goodput plateaus. The assertion (also enforced
 *     by CI in --quick mode): goodput at 1.5x saturation with admission
 *     on stays >= 90% of the sweep's peak.
 *
 *  2. **Grey failure: ejection vs heartbeat** — one backend in a HaaS
 *     pool silently degrades to 20x its service time mid-run. It still
 *     answers every management-path heartbeat, so the HealthMonitor's
 *     active path sees nothing (misses stay at zero); the serving
 *     layer's latency-percentile outlier detector ejects it from the
 *     routable set directly from data-plane evidence, and the ejection
 *     feeds one idempotent evidence report back to the monitor. The
 *     assertion: ejection lands strictly earlier than the monitor's own
 *     heartbeat-only detection bound for a node that went fully dark.
 *
 * Headline numbers are merged into BENCH_serving.json for the CI
 * artifact trail. Pass --quick for the shortened CI run; both phases'
 * assertions are enforced in quick mode too.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/cloud.hpp"
#include "haas/health_monitor.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "obs/metrics.hpp"
#include "roles/dnn_role.hpp"
#include "serving/cluster_client.hpp"
#include "sim/event_queue.hpp"

using namespace ccsim;

namespace {

/**
 * A pipelined accelerator endpoint whose service time can be inflated
 * mid-run — the grey-failure stand-in. Requests are accepted at the
 * engine's initiation interval and return after the fill latency, like
 * LocalFpgaAccelerator, but with a runtime slowdown multiplier.
 */
class DegradableAccelerator : public host::FeatureAccelerator
{
  public:
    explicit DegradableAccelerator(sim::EventQueue &eq) : queue(eq) {}

    void compute(std::uint32_t doc_count,
                 std::function<void()> done) override
    {
        const auto occupancy = static_cast<sim::TimePs>(doc_count) *
                               occupancyPerDoc * multiplier;
        const sim::TimePs start = std::max(queue.now(), busyUntil);
        busyUntil = start + occupancy;
        queue.schedule(busyUntil + fixedLatency * multiplier,
                       [d = std::move(done)] {
                           if (d)
                               d();
                       });
    }

    void setMultiplier(int m) { multiplier = m; }

    sim::TimePs occupancyPerDoc = 300 * sim::kNanosecond;
    sim::TimePs fixedLatency = 60 * sim::kMicrosecond;

  private:
    sim::EventQueue &queue;
    sim::TimePs busyUntil = 0;
    int multiplier = 1;
};

// ---------------------------------------------------------------------
// Phase 1: goodput under overload, admission off vs on
// ---------------------------------------------------------------------

/**
 * Frontend saturation: ~930us + ~620us CPU + ~120us accelerator per
 * query, 12 cores -> ~7.2k qps. The admission cap sits just below it.
 */
constexpr double kSatQps = 7200.0;
constexpr double kAdmitQps = 6200.0;
constexpr double kSloMs = 5.0;

struct LoadPoint {
    double factor = 0.0;      ///< offered load / saturation
    double goodputQps = 0.0;  ///< SLO-met completions per second
    double shedFrac = 0.0;    ///< submissions refused by admission
};

LoadPoint
runLoadPoint(double factor, bool admission_on, bool quick)
{
    const double warm_s = quick ? 0.2 : 0.4;
    const double window_s = quick ? 0.4 : 1.0;

    sim::EventQueue eq;
    std::vector<std::unique_ptr<host::LocalFpgaAccelerator>> accels;
    std::vector<int> instances;
    for (int i = 0; i < 4; ++i) {
        accels.push_back(
            std::make_unique<host::LocalFpgaAccelerator>(eq));
        instances.push_back(i);
    }

    serving::ServingConfig scfg;
    scfg.balancer = serving::BalancerPolicy::kLeastOutstanding;
    if (admission_on)
        scfg.admission.withRate(kAdmitQps, 64.0);
    serving::ClusterClient cluster(
        eq, "rank", [&instances] { return instances; }, scfg);
    for (int i = 0; i < 4; ++i)
        cluster.registerEndpoint(i, accels[i].get());

    host::RankingServer server(eq, host::RankingServiceParams{}, nullptr,
                               31);
    server.attachCluster(cluster, "bing");

    const sim::TimePs w_start = sim::fromSeconds(warm_s);
    const sim::TimePs w_end = w_start + sim::fromSeconds(window_s);
    std::uint64_t window_submitted = 0, window_shed = 0, window_good = 0;

    host::PoissonLoadGenerator gen(
        eq, factor * kSatQps,
        [&] {
            const sim::TimePs submitted_at = eq.now();
            const bool in_window =
                submitted_at >= w_start && submitted_at < w_end;
            if (in_window)
                ++window_submitted;
            const bool accepted = server.submitQuery([&, in_window](
                                                         sim::TimePs lat) {
                if (in_window && sim::toMillis(lat) <= kSloMs)
                    ++window_good;
            });
            if (!accepted && in_window)
                ++window_shed;
        },
        37);

    gen.start();
    eq.runUntil(w_end);
    gen.stop();
    // Let window submissions either finish or overshoot the SLO; queries
    // still queued after the slack have missed it by construction.
    eq.runFor(sim::fromMillis(quick ? 50 : 100));

    LoadPoint p;
    p.factor = factor;
    p.goodputQps = static_cast<double>(window_good) / window_s;
    p.shedFrac = window_submitted > 0
                     ? static_cast<double>(window_shed) /
                           static_cast<double>(window_submitted)
                     : 0.0;
    return p;
}

// ---------------------------------------------------------------------
// Phase 2: grey failure — passive ejection vs heartbeat detection
// ---------------------------------------------------------------------

struct GreyResult {
    bool ejected = false;
    double ejectMs = 0.0;          ///< grey onset -> ejection
    double heartbeatBoundMs = 0.0; ///< monitor's own dark-node bound
    std::uint64_t heartbeatMisses = 0;
    std::uint64_t evidenceReports = 0;
    double suspicion = 0.0;
};

GreyResult
runGreyFailure()
{
    sim::EventQueue eq;  // must outlive the observability hub
    obs::Observability hub;

    net::TopologyConfig topo;
    topo.hostsPerRack = 4;
    topo.racksPerPod = 2;
    topo.l1PerPod = 2;
    topo.pods = 1;
    topo.l2Count = 1;

    // Latency-percentile ejection tuned for a short run: a 32-sample
    // window re-evaluated every 16 successes, eject at 3x the cluster
    // median. Consecutive-error and timeout signals stay off — the grey
    // host never *fails* a request, it only serves them slowly.
    serving::ServingConfig scfg;
    scfg.balancer = serving::BalancerPolicy::kRoundRobin;
    scfg.ejection.withConsecutiveErrors(0)
        .withLatencySignal(3.0, 50.0, 16)
        .withEjectionTime(sim::fromMillis(500), 4);
    scfg.ejection.latencyWindow = 32;

    core::CloudConfig cfg = core::CloudConfig{}
                                .withTopology(topo)
                                .withServing(scfg)
                                .withObservability(&hub);
    cfg.createNics = false;
    core::ConfigurableCloud cloud(eq, cfg);
    auto &rm = cloud.resourceManager();

    // Management-path heartbeats at a realistic sweep period. The
    // monitor needs three misses to declare a node dead, so its bound
    // for a node that goes fully dark is ~4 sweep periods — and a grey
    // node never misses at all.
    haas::HealthMonitor hm(
        eq, rm,
        haas::HealthMonitorConfig{}
            .withHeartbeat(sim::fromMillis(250), sim::kMillisecond)
            .withSuspicion(3.0, 1.0, 1.0));
    cloud.attachHealthMonitor(hm);
    hm.start();

    std::map<int, std::unique_ptr<DegradableAccelerator>> accels;
    std::vector<std::unique_ptr<roles::DnnRole>> role_storage;
    haas::ServiceManager sm(eq, rm, "rank", [&](int) -> fpga::Role * {
        role_storage.push_back(std::make_unique<roles::DnnRole>(eq));
        return role_storage.back().get();
    });
    if (!sm.deploy(4))
        sim::fatal("ablation: deploy failed");

    auto cluster = cloud.makeClusterClient(sm, "rank", &hm);
    for (int host : sm.instances()) {
        accels[host] = std::make_unique<DegradableAccelerator>(eq);
        cluster->registerEndpoint(host, accels[host].get());
    }
    const int grey = sm.instances().front();

    host::PoissonLoadGenerator gen(
        eq, 2000.0,
        [&] {
            if (cluster->admit())
                cluster->compute(200, {});
        },
        41);

    const sim::TimePs t_grey = sim::fromMillis(500);
    const sim::TimePs t_end = t_grey + sim::fromSeconds(3.0);
    eq.schedule(t_grey, [&] { accels[grey]->setMultiplier(20); });

    GreyResult r;
    sim::TimePs t_eject = 0;
    std::function<void()> poll = [&] {
        if (cluster->outliers().ejected(grey)) {
            t_eject = eq.now();
            // Read the monitor state at the moment of ejection: the next
            // answered heartbeat will clear the suspicion again (the
            // management path *is* healthy — that is the point).
            r.evidenceReports = hm.evidenceReports();
            r.suspicion = hm.suspicion(grey);
            return;
        }
        if (eq.now() < t_end)
            eq.scheduleAfter(sim::kMillisecond, poll);
    };
    eq.schedule(t_grey, poll);

    gen.start();
    eq.runUntil(t_end);
    gen.stop();

    r.ejected = t_eject != 0;
    r.ejectMs = sim::toMillis(t_eject - t_grey);
    r.heartbeatBoundMs = sim::toMillis(hm.detectionBound());
    r.heartbeatMisses = hm.heartbeatsMissed();
    return r;
}

}  // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    std::printf("=== Ablation A7: serving layer under overload and grey "
                "failure ===%s\n\n",
                quick ? "  [quick]" : "");

    // ---- phase 1: goodput sweep -----------------------------------------
    std::printf("phase 1: goodput vs offered load (saturation ~%.0f qps, "
                "admission cap %.0f qps, SLO %.1f ms)\n",
                kSatQps, kAdmitQps, kSloMs);
    std::printf("  %-8s %18s %18s %10s\n", "load", "goodput (off)",
                "goodput (on)", "shed (on)");

    const std::vector<double> factors = {0.5, 0.75, 1.0, 1.25, 1.5, 2.0};
    std::map<double, LoadPoint> off_points, on_points;
    for (double f : factors) {
        off_points[f] = runLoadPoint(f, false, quick);
        on_points[f] = runLoadPoint(f, true, quick);
        std::printf("  %-8.2f %14.0f qps %14.0f qps %9.0f%%\n", f,
                    off_points[f].goodputQps, on_points[f].goodputQps,
                    on_points[f].shedFrac * 100.0);
    }

    double peak_on = 0.0, peak_off = 0.0;
    for (double f : factors) {
        peak_on = std::max(peak_on, on_points[f].goodputQps);
        peak_off = std::max(peak_off, off_points[f].goodputQps);
    }
    const double plateau =
        peak_on > 0 ? on_points[1.5].goodputQps / peak_on : 0.0;
    std::printf("\n  peak goodput: %.0f qps (admission on), %.0f qps "
                "(off)\n",
                peak_on, peak_off);
    std::printf("  at 1.5x saturation: %.0f qps with admission (%.0f%% "
                "of peak) vs %.0f qps without\n",
                on_points[1.5].goodputQps, plateau * 100.0,
                off_points[1.5].goodputQps);

    bool ok = true;
    if (plateau >= 0.90) {
        std::printf("  goodput plateau: OK (>= 90%% of peak at 1.5x "
                    "saturation)\n");
    } else {
        std::printf("  goodput plateau: FAIL (%.0f%% < 90%% of peak)\n",
                    plateau * 100.0);
        ok = false;
    }
    if (off_points[1.5].goodputQps >= 0.5 * on_points[1.5].goodputQps) {
        std::printf("  FAIL: no overload cliff without admission — the "
                    "ablation shows nothing\n");
        ok = false;
    }

    // ---- phase 2: grey failure ------------------------------------------
    std::printf("\nphase 2: grey backend (20x service time, heartbeats "
                "still answered)\n");
    const GreyResult grey = runGreyFailure();
    if (!grey.ejected) {
        std::printf("  FAIL: grey backend was never ejected\n");
        ok = false;
    } else {
        std::printf("  outlier ejection after %.1f ms of grey service "
                    "(latency percentile)\n",
                    grey.ejectMs);
        std::printf("  heartbeat-only detection bound for a dark node: "
                    "%.1f ms — and this node never\n  missed a beat "
                    "(misses=%llu), so heartbeats alone would never "
                    "catch it\n",
                    grey.heartbeatBoundMs,
                    static_cast<unsigned long long>(grey.heartbeatMisses));
        std::printf("  evidence fed to HealthMonitor: %llu report(s), "
                    "suspicion %.1f\n",
                    static_cast<unsigned long long>(grey.evidenceReports),
                    grey.suspicion);
        if (grey.ejectMs < grey.heartbeatBoundMs &&
            grey.heartbeatMisses == 0 && grey.evidenceReports >= 1) {
            std::printf("  ejection beats heartbeat: OK (%.1f ms < %.1f "
                        "ms bound)\n",
                        grey.ejectMs, grey.heartbeatBoundMs);
        } else {
            std::printf("  ejection beats heartbeat: FAIL\n");
            ok = false;
        }
    }

    // ---- trajectory file -------------------------------------------------
    ccsim::bench::BenchValues v;
    v["serving.goodput_peak_on_qps"] = peak_on;
    v["serving.goodput_1p5x_on_qps"] = on_points[1.5].goodputQps;
    v["serving.goodput_1p5x_off_qps"] = off_points[1.5].goodputQps;
    v["serving.plateau_ratio"] = plateau;
    v["serving.shed_frac_1p5x"] = on_points[1.5].shedFrac;
    v["serving.grey_eject_ms"] = grey.ejectMs;
    v["serving.heartbeat_bound_ms"] = grey.heartbeatBoundMs;
    ccsim::bench::mergeBenchJson("BENCH_serving.json", v);
    std::printf("\n-> BENCH_serving.json (serving.*)\n");

    if (ok)
        std::printf("\nconclusion: admission shedding turns the overload "
                    "cliff into a plateau, and\npassive outlier ejection "
                    "catches a grey backend the heartbeat path cannot "
                    "see.\n");
    return ok ? 0 : 1;
}
