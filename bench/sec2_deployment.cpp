/**
 * @file
 * Reproduces the Section II-B deployment reliability measurements:
 * 5,760 servers, one month of mirrored production traffic.
 *
 * Paper observations: 2 FPGA hard failures; 1 bad network cable; 5
 * machines failed PCIe Gen3 x8 training; 8 DRAM calibration failures
 * (logic bug, repaired by reconfiguration); one configuration bit-flip
 * per 1025 machine-days; scrubbing every ~30 s; at least one role hang
 * attributed to an SEU.
 */
#include <cstdio>

#include "fpga/power_virus.hpp"
#include "fpga/reliability.hpp"
#include "fpga/shell.hpp"
#include "sim/event_queue.hpp"

using namespace ccsim;

int
main()
{
    std::printf("=== Section II: board qualification + 5,760-server, "
                "1-month deployment ===\n\n");

    // --- power-virus burn-in (every server passed before production) ---
    {
        sim::EventQueue eq;
        fpga::ShellConfig sc;
        sc.name = "qual";
        sc.ip = {1};
        sc.ltl.maxConnections = 4;
        fpga::Shell shell(eq, sc);
        fpga::PowerVirus virus(eq);
        fpga::BurnInReport report;
        virus.run(shell, 10 * sim::kMillisecond,
                  fpga::BurnInConditions{},
                  [&](const fpga::BurnInReport &r) { report = r; });
        eq.runAll();
        std::printf("-- power-virus burn-in (70C inlet, 160 lfm, failed "
                    "fan, high CPU load) --\n");
        std::printf("  DRAM / PCIe / ER utilization: %.0f%% / %.0f%% / "
                    "%.1f%%\n", 100 * report.dramUtilization,
                    100 * report.pcieUtilization,
                    100 * report.erUtilization);
        std::printf("  card power: %.1f W  (paper: 29.2 W; TDP 32 W, "
                    "electrical limit 35 W)\n", report.powerWatts);
        std::printf("  qualification: %s\n\n",
                    report.passed() ? "PASS" : "FAIL");
    }

    fpga::DeploymentConfig cfg;
    std::printf("  %-34s %10s %10s %10s\n", "metric", "seed A", "seed B",
                "paper");
    fpga::DeploymentConfig cfg_b = cfg;
    cfg_b.seed = 777;
    const auto a = fpga::simulateDeployment(cfg);
    const auto b = fpga::simulateDeployment(cfg_b);

    auto row = [](const char *name, std::uint64_t x, std::uint64_t y,
                  const char *paper) {
        std::printf("  %-34s %10llu %10llu %10s\n", name,
                    static_cast<unsigned long long>(x),
                    static_cast<unsigned long long>(y), paper);
    };
    row("FPGA hard failures", a.hardFailures, b.hardFailures, "2");
    row("network cable failures", a.cableFailures, b.cableFailures, "1");
    row("PCIe Gen3 training failures", a.pcieTrainingFailures,
        b.pcieTrainingFailures, "5");
    row("DRAM calibration failures", a.dramCalibFailures,
        b.dramCalibFailures, "8");
    row("config SEU events", a.seuEvents, b.seuEvents, "~169");
    row("  caught by ~30s scrubbing", a.seuCaughtByScrub,
        b.seuCaughtByScrub, "most");
    row("  role hangs (auto-recovered)", a.roleHangs, b.roleHangs, ">=1");

    std::printf("\n  machine-days per SEU: %.0f / %.0f   (paper: 1025)\n",
                a.machineDaysPerSeu(), b.machineDaysPerSeu());
    std::printf("  machine-days simulated: %llu\n",
                static_cast<unsigned long long>(a.machineDays));
    std::printf("\n  conclusion (as in paper): FPGA-related failure rates "
                "acceptably low for production.\n");
    return 0;
}
