/**
 * @file
 * google-benchmark micro-benchmarks for the hot code paths: the
 * discrete-event kernel, the crypto datapath the crypto role executes,
 * the ranking feature engines, and flit routing through the ER.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "crypto/aes.hpp"
#include "crypto/sha1.hpp"
#include "host/workload.hpp"
#include "net/packet.hpp"
#include "roles/ranking/features.hpp"
#include "router/elastic_router.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

using namespace ccsim;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue eq;
    std::int64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleAfter(i, [&sink] { ++sink; });
        eq.runAll();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueCancelChurn(benchmark::State &state)
{
    // Timer-heavy workloads (LTL retransmit timers, DCQCN rate timers)
    // schedule and then cancel most of what they schedule.
    sim::EventQueue eq;
    std::int64_t sink = 0;
    std::vector<sim::EventId> ids(1000);
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            ids[i] = eq.scheduleAfter(i + 1, [&sink] { ++sink; });
        for (int i = 0; i < 1000; i += 2)
            eq.cancel(ids[i]);
        eq.runAll();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelChurn);

void
BM_EventQueueBimodal(benchmark::State &state)
{
    // ccsim's real delay mix: sub-ns flit/link hops interleaved with
    // 50 µs LTL retransmit timers, seven wheel levels apart.
    sim::EventQueue eq;
    std::int64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i) {
            const sim::TimePs delay =
                (i % 10 == 9) ? sim::fromNanos(50000) : 100 + i;
            eq.scheduleAfter(delay, [&sink] { ++sink; });
        }
        eq.runAll();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueBimodal);

void
BM_PacketPoolMakePacket(benchmark::State &state)
{
    // Steady-state packet churn: every created packet is dropped before
    // the next, so the pool serves each request from its freelist.
    for (auto _ : state) {
        auto pkt = net::makePacket();
        benchmark::DoNotOptimize(pkt);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolMakePacket);

void
BM_Rng(benchmark::State &state)
{
    sim::Rng rng(1);
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc ^= rng.next();
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rng);

void
BM_AesEncryptBlock(benchmark::State &state)
{
    crypto::Key128 key{};
    crypto::Aes128 aes(key);
    crypto::Block block{};
    for (auto _ : state) {
        aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void
BM_AesCbc1500B(benchmark::State &state)
{
    crypto::Key128 key{};
    crypto::Block iv{};
    crypto::AesCbc cbc(key, iv);
    std::vector<std::uint8_t> buf(1504, 0xAB);
    for (auto _ : state) {
        cbc.encrypt(buf.data(), buf.size());
        benchmark::DoNotOptimize(buf);
    }
    state.SetBytesProcessed(state.iterations() * 1504);
}
BENCHMARK(BM_AesCbc1500B);

void
BM_AesGcm1500B(benchmark::State &state)
{
    crypto::Key128 key{};
    crypto::AesGcm gcm(key);
    std::vector<std::uint8_t> buf(1500, 0xAB);
    std::uint8_t iv[12] = {};
    crypto::Block tag;
    for (auto _ : state) {
        gcm.encrypt(iv, nullptr, 0, buf.data(), buf.size(), tag);
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_AesGcm1500B);

void
BM_Sha1_1500B(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(1500, 0xAB);
    for (auto _ : state) {
        auto digest = crypto::Sha1::hash(buf.data(), buf.size());
        benchmark::DoNotOptimize(digest);
    }
    state.SetBytesProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_Sha1_1500B);

void
BM_FfuRun(benchmark::State &state)
{
    host::CorpusGenerator corpus(20000, 1.0, 5);
    const auto query = corpus.makeQuery(4);
    const auto doc = corpus.makeCandidateDocument(query, 500);
    const auto prog = roles::FfuProgram::compile(query);
    roles::FeatureVector f{};
    for (auto _ : state) {
        prog.run(doc, f);
        benchmark::DoNotOptimize(f);
    }
    state.SetItemsProcessed(state.iterations() * doc.terms.size());
}
BENCHMARK(BM_FfuRun);

void
BM_DpfRun(benchmark::State &state)
{
    host::CorpusGenerator corpus(20000, 1.0, 5);
    const auto query = corpus.makeQuery(4);
    const auto doc = corpus.makeCandidateDocument(query, 500);
    const roles::DpfEngine dpf(query);
    roles::FeatureVector f{};
    for (auto _ : state) {
        dpf.run(doc, f);
        benchmark::DoNotOptimize(f);
    }
    state.SetItemsProcessed(state.iterations() * doc.terms.size());
}
BENCHMARK(BM_DpfRun);

void
BM_ErMessageRouting(benchmark::State &state)
{
    sim::EventQueue eq;
    router::ErConfig cfg;
    router::ElasticRouter er(eq, cfg);
    std::vector<std::unique_ptr<router::ErEndpoint>> eps;
    for (int p = 0; p < cfg.numPorts; ++p) {
        eps.push_back(std::make_unique<router::ErEndpoint>(eq, er, p, p));
        er.setOutputSink(p, eps.back().get());
    }
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eps[i % 4]->sendMessage((i + 1) % 4, i % 2, 256);
        eq.runAll();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ErMessageRouting);

/**
 * Directly timed kernel measurements for the benchmark trajectory.
 * These deliberately bypass google-benchmark so the recorded numbers
 * have one clean definition (fixed event count, one timed region) that
 * stays comparable across PRs regardless of --benchmark_* flags.
 */
ccsim::bench::BenchValues
measureKernelTrajectory()
{
    using Clock = std::chrono::steady_clock;
    ccsim::bench::BenchValues v;

    {
        // Mirrors BM_EventQueueScheduleRun: 2M short-delay events.
        sim::EventQueue eq;
        std::int64_t sink = 0;
        const auto t0 = Clock::now();
        for (int batch = 0; batch < 2000; ++batch) {
            for (int i = 0; i < 1000; ++i)
                eq.scheduleAfter(i, [&sink] { ++sink; });
            eq.runAll();
        }
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        benchmark::DoNotOptimize(sink);
        const double events = static_cast<double>(eq.eventsExecuted());
        v["kernel.events_per_sec"] = events / secs;
        v["kernel.ns_per_event"] = 1e9 * secs / events;
        v["kernel.peak_live_events"] =
            static_cast<double>(eq.peakLiveEvents());
    }
    {
        // Bimodal mix with a 50% cancel rate, the LTL-like workload.
        sim::EventQueue eq;
        std::int64_t sink = 0;
        std::vector<sim::EventId> ids(1000);
        const auto t0 = Clock::now();
        for (int batch = 0; batch < 1000; ++batch) {
            for (int i = 0; i < 1000; ++i) {
                const sim::TimePs delay =
                    (i % 10 == 9) ? sim::fromNanos(50000) : 100 + i;
                ids[i] = eq.scheduleAfter(delay, [&sink] { ++sink; });
            }
            for (int i = 0; i < 1000; i += 2)
                eq.cancel(ids[i]);
            eq.runAll();
        }
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        benchmark::DoNotOptimize(sink);
        const double ops =
            static_cast<double>(eq.eventsExecuted() + eq.eventsCancelled());
        v["kernel.bimodal_cancel.events_per_sec"] = ops / secs;
    }
    {
        const auto t0 = Clock::now();
        for (int i = 0; i < 1000000; ++i) {
            auto pkt = net::makePacket();
            benchmark::DoNotOptimize(pkt);
        }
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        v["kernel.packet_pool.packets_per_sec"] = 1e6 / secs;
    }

    const long rss = ccsim::bench::peakRssKb();
    if (rss >= 0)
        v["kernel.rss_peak_kb"] = static_cast<double>(rss);
    return v;
}

}  // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const auto values = measureKernelTrajectory();
    ccsim::bench::mergeBenchJson("BENCH_kernel.json", values);
    std::printf("\nwrote %zu kernel trajectory keys to BENCH_kernel.json "
                "(%.2fM events/sec, %.1f ns/event)\n",
                values.size(), values.at("kernel.events_per_sec") / 1e6,
                values.at("kernel.ns_per_event"));
    return 0;
}
