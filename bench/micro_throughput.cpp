/**
 * @file
 * google-benchmark micro-benchmarks for the hot code paths: the
 * discrete-event kernel, the crypto datapath the crypto role executes,
 * the ranking feature engines, and flit routing through the ER.
 */
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/sha1.hpp"
#include "host/workload.hpp"
#include "roles/ranking/features.hpp"
#include "router/elastic_router.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

using namespace ccsim;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue eq;
    std::int64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleAfter(i, [&sink] { ++sink; });
        eq.runAll();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_Rng(benchmark::State &state)
{
    sim::Rng rng(1);
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc ^= rng.next();
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rng);

void
BM_AesEncryptBlock(benchmark::State &state)
{
    crypto::Key128 key{};
    crypto::Aes128 aes(key);
    crypto::Block block{};
    for (auto _ : state) {
        aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void
BM_AesCbc1500B(benchmark::State &state)
{
    crypto::Key128 key{};
    crypto::Block iv{};
    crypto::AesCbc cbc(key, iv);
    std::vector<std::uint8_t> buf(1504, 0xAB);
    for (auto _ : state) {
        cbc.encrypt(buf.data(), buf.size());
        benchmark::DoNotOptimize(buf);
    }
    state.SetBytesProcessed(state.iterations() * 1504);
}
BENCHMARK(BM_AesCbc1500B);

void
BM_AesGcm1500B(benchmark::State &state)
{
    crypto::Key128 key{};
    crypto::AesGcm gcm(key);
    std::vector<std::uint8_t> buf(1500, 0xAB);
    std::uint8_t iv[12] = {};
    crypto::Block tag;
    for (auto _ : state) {
        gcm.encrypt(iv, nullptr, 0, buf.data(), buf.size(), tag);
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_AesGcm1500B);

void
BM_Sha1_1500B(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(1500, 0xAB);
    for (auto _ : state) {
        auto digest = crypto::Sha1::hash(buf.data(), buf.size());
        benchmark::DoNotOptimize(digest);
    }
    state.SetBytesProcessed(state.iterations() * 1500);
}
BENCHMARK(BM_Sha1_1500B);

void
BM_FfuRun(benchmark::State &state)
{
    host::CorpusGenerator corpus(20000, 1.0, 5);
    const auto query = corpus.makeQuery(4);
    const auto doc = corpus.makeCandidateDocument(query, 500);
    const auto prog = roles::FfuProgram::compile(query);
    roles::FeatureVector f{};
    for (auto _ : state) {
        prog.run(doc, f);
        benchmark::DoNotOptimize(f);
    }
    state.SetItemsProcessed(state.iterations() * doc.terms.size());
}
BENCHMARK(BM_FfuRun);

void
BM_DpfRun(benchmark::State &state)
{
    host::CorpusGenerator corpus(20000, 1.0, 5);
    const auto query = corpus.makeQuery(4);
    const auto doc = corpus.makeCandidateDocument(query, 500);
    const roles::DpfEngine dpf(query);
    roles::FeatureVector f{};
    for (auto _ : state) {
        dpf.run(doc, f);
        benchmark::DoNotOptimize(f);
    }
    state.SetItemsProcessed(state.iterations() * doc.terms.size());
}
BENCHMARK(BM_DpfRun);

void
BM_ErMessageRouting(benchmark::State &state)
{
    sim::EventQueue eq;
    router::ErConfig cfg;
    router::ElasticRouter er(eq, cfg);
    std::vector<std::unique_ptr<router::ErEndpoint>> eps;
    for (int p = 0; p < cfg.numPorts; ++p) {
        eps.push_back(std::make_unique<router::ErEndpoint>(eq, er, p, p));
        er.setOutputSink(p, eps.back().get());
    }
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eps[i % 4]->sendMessage((i + 1) % 4, i % 2, 256);
        eq.runAll();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ErMessageRouting);

}  // namespace

BENCHMARK_MAIN();
