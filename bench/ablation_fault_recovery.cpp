/**
 * @file
 * Ablation A4: live fault injection and end-to-end recovery.
 *
 * The paper's resilience story (Sections II/V-C) as one live timeline: a
 * ranking frontend serves a Poisson query stream through a remote FPGA
 * accelerator leased from HaaS. Mid-run the accelerator's FPGA
 * hard-fails (ccsim::fault). The control plane swaps in a spare
 * instantly; the data plane detects the death via LTL retry exhaustion,
 * degrades gracefully to software-mode feature computation, then
 * re-points at the spare. Every timeline event is reported from the
 * observability registry — the run is reconstructable from metrics
 * alone — and the post-recovery p99 must return to the pre-fault
 * baseline.
 *
 * Deterministic per seed: two runs with the same seeds print the same
 * timeline and the same latency table. Pass --quick for a shortened run
 * (CI smoke); thresholds are only enforced in the full run.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "fault/fault.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "obs/metrics.hpp"
#include "roles/ranking/ranking_role.hpp"
#include "sim/event_queue.hpp"

using namespace ccsim;

namespace {

struct Sample {
    sim::TimePs doneAt;
    double ms;
};

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        std::max(0.0, p / 100.0 * static_cast<double>(v.size()) - 1.0));
    return v[std::min(idx, v.size() - 1)];
}

struct PhaseStats {
    std::size_t n = 0;
    double mean = 0, p50 = 0, p99 = 0, max = 0;
};

PhaseStats
phaseStats(const std::vector<Sample> &samples, sim::TimePs from,
           sim::TimePs to)
{
    std::vector<double> v;
    for (const auto &s : samples)
        if (s.doneAt >= from && s.doneAt < to)
            v.push_back(s.ms);
    PhaseStats ps;
    ps.n = v.size();
    if (v.empty())
        return ps;
    double sum = 0;
    for (double x : v)
        sum += x;
    ps.mean = sum / static_cast<double>(v.size());
    ps.p50 = percentile(v, 50);
    ps.p99 = percentile(v, 99);
    ps.max = *std::max_element(v.begin(), v.end());
    return ps;
}

}  // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    std::printf("=== Ablation A4: live FPGA failure, HaaS failover, "
                "end-to-end recovery ===%s\n\n",
                quick ? "  [quick]" : "");

    const double kQps = 2000.0;
    const double warm_s = quick ? 0.2 : 0.5;
    const double pre_s = quick ? 0.5 : 2.5;   // healthy baseline window
    const double post_s = quick ? 0.5 : 3.0;  // post-recovery window
    const sim::TimePs kDrain = sim::fromMillis(50);  // degraded tail

    sim::EventQueue eq;  // must outlive the observability hub
    obs::Observability hub;

    // A small pod: 8 FPGA-equipped servers, one of which will die.
    net::TopologyConfig topo;
    topo.hostsPerRack = 4;
    topo.racksPerPod = 2;
    topo.l1PerPod = 2;
    topo.pods = 1;
    topo.l2Count = 1;
    fpga::ShellConfig shell;
    shell.ltl.maxConnections = 16;
    const core::CloudConfig cfg = core::CloudConfig{}
                                      .withTopology(topo)
                                      .withShellTemplate(shell)
                                      .withObservability(&hub);
    core::ConfigurableCloud cloud(eq, cfg);
    auto &rm = cloud.resourceManager();

    // The frontend host is leased out of the pool so the accelerator
    // service can never land on it.
    auto frontend_lease = rm.acquire("ranking-frontend", 1);
    if (!frontend_lease)
        sim::fatal("ablation: empty pool");
    const int client = frontend_lease->hosts.front();

    // Ranking accelerator service, deployed through HaaS.
    std::vector<std::unique_ptr<roles::RankingRole>> role_pool;
    haas::ServiceManager sm(eq, rm, "rank", [&](int) {
        roles::RankingRoleParams rp;
        rp.occupancyPerDoc = 300 * sim::kNanosecond;
        rp.fixedLatency = 40 * sim::kMicrosecond;
        role_pool.push_back(std::make_unique<roles::RankingRole>(eq, rp));
        return role_pool.back().get();
    });
    sm.attachObservability(&hub);
    rm.subscribeFailures([&](int host, std::uint64_t) {
        sm.handleFailure(host);  // control plane swaps in a spare
    });
    if (!sm.deploy(1))
        sim::fatal("ablation: deploy failed");
    const int victim = sm.instances().front();

    roles::ForwarderRole forwarder;
    if (cloud.shell(client).addRole(&forwarder) < 0)
        sim::fatal("ablation: forwarder does not fit");

    // Data-plane attachment to the current instance. Re-running this is
    // the "re-point at the spare" step: the RAII channels close the dead
    // connections and the new client replaces the host-rx handler.
    core::LtlChannel req_ch, rep_ch;  // must stay open while serving
    std::unique_ptr<roles::RemoteRankingClient> remote;
    auto connectTo = [&](int instance) {
        req_ch = cloud.openLtl(client, instance, fpga::kErPortRole0);
        rep_ch = cloud.openLtl(instance, client, forwarder.port());
        remote = std::make_unique<roles::RemoteRankingClient>(
            eq, cloud.shell(client), forwarder, req_ch.sendConn(),
            rep_ch.sendConn());
    };
    connectTo(victim);

    host::RankingServer server(eq, host::RankingServiceParams{},
                               remote.get(), 31);
    server.attachObservability(&hub, "rank");

    std::vector<Sample> samples;
    host::PoissonLoadGenerator gen(
        eq, kQps,
        [&] {
            server.submitQuery([&](sim::TimePs lat) {
                samples.push_back({eq.now(), sim::toMillis(lat)});
            });
        },
        37);

    // ---- fault script ---------------------------------------------------
    const sim::TimePs t_warm = sim::fromSeconds(warm_s);
    const sim::TimePs t_fail = t_warm + sim::fromSeconds(pre_s);

    fault::FaultInjector injector(
        eq, cloud,
        fault::FaultConfig{}.withSeed(7).withFpgaHardFail(t_fail, victim));
    injector.arm();

    // ---- timeline, reported from the observability registry -------------
    struct Entry {
        sim::TimePs at;
        std::string text;
    };
    std::vector<Entry> timeline;
    auto probe = [&](const std::string &p) {
        return hub.registry.probeValue(p);
    };
    auto snap = [&](std::string text) {
        timeline.push_back({eq.now(), std::move(text)});
    };
    char buf[256];

    // The injector's fault event was scheduled at arm(); this observer is
    // scheduled after it, so FIFO ordering runs it once the fault (and
    // the synchronous HaaS failover) has happened.
    eq.schedule(t_fail, [&] {
        std::snprintf(buf, sizeof buf,
                      "FPGA on host %d hard-fails: fault.injected=%.0f "
                      "fault.fpga_failures=%.0f haas.failed=%.0f",
                      victim, probe("fault.injected"),
                      probe("fault.fpga_failures"), probe("haas.failed"));
        snap(buf);
        std::snprintf(buf, sizeof buf,
                      "HaaS control plane swaps in spare host %d: "
                      "haas.sm.rank.failovers=%.0f "
                      "haas.sm.rank.instances=%.0f",
                      sm.instances().front(),
                      probe("haas.sm.rank.failovers"),
                      probe("haas.sm.rank.instances"));
        snap(buf);
    });

    // Data-plane detection: the client's LTL engine exhausts retries on
    // the request connection and declares it failed.
    sim::TimePs t_detect = 0, t_recover = 0;
    std::uint64_t rescued = 0;
    bool detected = false;
    const std::string ltl_prefix = "ltl.node" + std::to_string(client);
    cloud.shell(client).ltlEngine()->setFailureHandler(
        [&](std::uint16_t conn) {
            if (detected || conn != req_ch.sendConn())
                return;
            detected = true;
            t_detect = eq.now();
            server.setAccelerator(nullptr);
            rescued = server.failPendingToSoftware();
            std::snprintf(buf, sizeof buf,
                          "client LTL declares conn %u dead "
                          "(%s.conn_failures=%.0f, %s.retransmits=%.0f); "
                          "degraded to software, %llu blocked queries "
                          "rescued",
                          conn, ltl_prefix.c_str(),
                          probe(ltl_prefix + ".conn_failures"),
                          ltl_prefix.c_str(),
                          probe(ltl_prefix + ".retransmits"),
                          static_cast<unsigned long long>(rescued));
            snap(buf);
            // Service re-resolution: ask HaaS for the current instance
            // and re-point the data plane at it.
            eq.scheduleAfter(300 * sim::kMicrosecond, [&] {
                const int spare = sm.instances().front();
                connectTo(spare);
                server.setAccelerator(remote.get());
                t_recover = eq.now();
                std::snprintf(
                    buf, sizeof buf,
                    "frontend re-pointed at spare host %d; accelerated "
                    "path restored (host.rank.sw_feature_queries=%.0f)",
                    spare, probe("host.rank.sw_feature_queries"));
                snap(buf);
            });
        });

    // ---- run ------------------------------------------------------------
    gen.start();
    const sim::TimePs t_end = t_fail + sim::fromMillis(quick ? 20 : 50) +
                              kDrain + sim::fromSeconds(post_s);
    eq.runUntil(t_end);
    gen.stop();
    eq.runFor(sim::fromMillis(200));  // drain in-flight queries

    // ---- report ---------------------------------------------------------
    std::printf("timeline (all figures read live from the obs "
                "registry):\n");
    for (const auto &e : timeline)
        std::printf("  [%10.1f us] %s\n", sim::toMicros(e.at),
                    e.text.c_str());

    if (!detected || t_recover == 0) {
        std::printf("\nFAIL: fault was never detected/recovered\n");
        return 1;
    }

    const sim::TimePs post_from = t_recover + kDrain;
    const PhaseStats pre = phaseStats(samples, t_warm, t_fail);
    const PhaseStats during = phaseStats(samples, t_fail, post_from);
    const PhaseStats post = phaseStats(samples, post_from, t_end);

    std::printf("\nlatency by phase (query completion time, ms):\n");
    std::printf("  %-22s %8s %8s %8s %8s %8s\n", "phase", "queries",
                "mean", "p50", "p99", "max");
    auto row = [](const char *name, const PhaseStats &s) {
        std::printf("  %-22s %8zu %8.2f %8.2f %8.2f %8.2f\n", name, s.n,
                    s.mean, s.p50, s.p99, s.max);
    };
    row("pre-fault (accel)", pre);
    row("during (degraded)", during);
    row("post-recovery", post);

    std::printf("\nrecovery summary:\n");
    std::printf("  fault -> detect:   %8.1f us (LTL retry exhaustion)\n",
                sim::toMicros(t_detect - t_fail));
    std::printf("  detect -> repoint: %8.1f us (service re-resolution)\n",
                sim::toMicros(t_recover - t_detect));
    std::printf("  victim downtime:   %8.1f us and counting "
                "(fault.node%d.downtime_us=%.1f)\n",
                sim::toMicros(injector.downtime(victim)), victim,
                probe("fault.node" + std::to_string(victim) +
                      ".downtime_us"));
    std::printf("  queries rescued to software: %llu "
                "(host.rank.sw_feature_queries=%.0f)\n",
                static_cast<unsigned long long>(rescued),
                probe("host.rank.sw_feature_queries"));
    std::printf("  frames on dead conn: abandoned=%.0f (sent=%.0f "
                "acked=%.0f in_flight=%.0f)\n",
                probe(ltl_prefix + ".frames_abandoned"),
                probe(ltl_prefix + ".frames_sent"),
                probe(ltl_prefix + ".frames_acked"),
                probe(ltl_prefix + ".frames_in_flight"));

    const double delta =
        pre.p99 > 0 ? (post.p99 - pre.p99) / pre.p99 * 100.0 : 0.0;
    std::printf("\npost-recovery p99 vs pre-fault baseline: %+.1f%% "
                "(%.2f ms -> %.2f ms)\n",
                delta, pre.p99, post.p99);

    bool ok = true;
    if (!quick) {
        // The degraded window is short (~1.3 ms: detection + re-resolve),
        // so its p99 barely moves — the software-path excursion shows up
        // in the tail, and the service must have kept answering.
        if (during.n == 0 || during.max <= pre.max) {
            std::printf("FAIL: software-path excursion not visible in "
                        "the degraded phase tail\n");
            ok = false;
        }
        if (rescued + static_cast<std::uint64_t>(
                          probe("host.rank.sw_feature_queries")) == 0) {
            std::printf("FAIL: no query ever took the software path\n");
            ok = false;
        }
        if (server.inFlight() != 0) {
            std::printf("FAIL: %llu queries never completed\n",
                        static_cast<unsigned long long>(
                            server.inFlight()));
            ok = false;
        }
        if (std::abs(delta) > 5.0) {
            std::printf("FAIL: post-recovery p99 outside 5%% of "
                        "baseline\n");
            ok = false;
        }
    }
    if (ok)
        std::printf("conclusion: the service kept answering through a "
                    "live FPGA failure —\ndegraded to software for %.1f "
                    "ms, then HaaS's spare restored the accelerated\n"
                    "path to within %.1f%% of baseline. Failure blast "
                    "radius: one server, briefly.\n",
                    sim::toMillis(post_from - t_fail), std::abs(delta));
    return ok ? 0 : 1;
}
