/**
 * @file
 * Reproduces Figure 7: five-day throughput and 99.9th-percentile latency
 * of the ranking service in two (simulated) production datacenters of
 * identical scale — one software-only, one FPGA-accelerated.
 *
 * Live Bing traffic is unavailable, so a synthetic diurnal trace stands
 * in (sinusoidal daily swing + noise + bursts + day-to-day drift). The
 * software datacenter sits behind the paper's dynamic load balancer,
 * which caps admitted traffic when tail latencies exceed thresholds; the
 * FPGA datacenter absorbs more than twice the offered load with tight
 * latencies.
 *
 * Each 30-minute trace window is simulated as a compressed steady-state
 * slice on a representative server (1.5 s warm-up + 4 s measurement).
 * Both datacenters and every window share ONE warm EventQueue: the
 * hierarchical wheel, freelists, and allocation pools stay hot instead
 * of being rebuilt per datacenter, which is what the `fig07.*` keys in
 * BENCH_scale.json track.
 *
 * Flags:
 *  --quick        shortened run (1 day, 12 windows, shorter slices);
 *  --fabric rack  the classic representative-server study (default);
 *  --fabric l2    the paper-scale campaign: a flyweight 249,600-host
 *                 L2 fabric (24 hosts x 40 racks x 260 pods), cross-pod
 *                 LTL round-trip probes, a diurnal fluid background
 *                 (flows crossing the probe trunks are promoted to
 *                 packet fidelity at the conservation-checked boundary),
 *                 and HaaS lease churn touching flyweight stubs. Peak
 *                 RSS is asserted against a 4 GB budget and the
 *                 headline numbers land in BENCH_scale.json;
 *  --shards N     run the l2 campaign on the parallel kernel with N
 *                 worker threads (byte-identical to any other N);
 *  --chaos        correlated-failure chaos campaign on the same L2
 *                 fabric: a ranking service placed with rack/pod
 *                 anti-affinity, a domain-aware HealthMonitor, and a
 *                 scripted ChaosEngine drill — TOR hard death under
 *                 live query traffic (zero lost queries asserted),
 *                 one rack-level conviction within the advertised
 *                 bound, a rate-limited lease evacuation, a gray L2
 *                 spine, and a rolling maintenance drain — with
 *                 results in BENCH_chaos.json;
 *  --no-anti-affinity  chaos ablation: same drill without placement
 *                 spreading, demonstrating the containment violation
 *                 (the dead TOR takes every instance at once).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/cloud.hpp"
#include "fault/chaos.hpp"
#include "fault/fault.hpp"
#include "haas/health_monitor.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "net/fluid.hpp"
#include "obs/metrics.hpp"
#include "obs/sharded_obs.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded_queue.hpp"
#include "sim/stats.hpp"

using namespace ccsim;

namespace {

constexpr const char *kBenchFile = "BENCH_scale.json";
constexpr long kRssBudgetKb = 4L * 1024 * 1024;  // 4 GiB

double
wallSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         since)
        .count();
}

/** Assert + report the peak-RSS budget (shared by both fabrics). */
long
checkRssBudget()
{
    const long rss_kb = bench::peakRssKb();
    if (rss_kb < 0) {
        std::printf("rss budget: SKIP (platform does not expose VmHWM)\n");
        return rss_kb;
    }
    if (rss_kb > kRssBudgetKb)
        sim::fatalf("fig07: peak RSS ", rss_kb / 1024, " MB exceeds the ",
                    kRssBudgetKb / 1024, " MB budget");
    std::printf("rss budget: OK (%ld MB <= %ld MB)\n", rss_kb / 1024,
                kRssBudgetKb / 1024);
    return rss_kb;
}

// ---------------------------------------------------------------------------
// --fabric rack: the classic two-datacenter representative-server study
// ---------------------------------------------------------------------------

constexpr double kSoftwareNominalQps = 3100.0;
constexpr double kSoftwareDemandQps = 3400.0;  // organic demand at peak
/**
 * The FPGA datacenter organically receives >2x the load the software
 * datacenter is allowed to admit, yet stays below its own ~7200 qps
 * saturation even at the heaviest burst (trace tops out near 1.46x of
 * the nominal daily peak).
 */
constexpr double kFpgaDemandQps = 4500.0;

struct WindowResult {
    double offeredQps;
    double admittedQps;
    double p999Ms;
};

/**
 * Simulate one datacenter's trace on @p eq. The queue is shared and
 * stays warm across calls: the generator is stopped and in-flight
 * queries drained before the server goes away, so the next datacenter
 * reuses the same wheel without rebuild. Poisson gaps and service times
 * are relative, so results do not depend on the queue's start time.
 */
std::vector<WindowResult>
runDatacenter(sim::EventQueue &eq, const std::vector<double> &trace,
              bool use_fpga, bool load_balancer_cap, double settle_s,
              double measure_s)
{
    std::unique_ptr<host::LocalFpgaAccelerator> accel;
    if (use_fpga)
        accel = std::make_unique<host::LocalFpgaAccelerator>(eq);
    host::RankingServer server(eq, host::RankingServiceParams{},
                               accel.get(), 11);
    host::PoissonLoadGenerator gen(eq, 100.0,
                                   [&] { server.submitQuery(); }, 13);
    gen.start();

    const double demand_peak =
        use_fpga ? kFpgaDemandQps : kSoftwareDemandQps;
    double admitted_cap = demand_peak;  // dynamic load-balancer state
    std::vector<WindowResult> results;
    for (double load : trace) {
        const double offered = load * demand_peak;
        double admitted = offered;
        if (load_balancer_cap)
            admitted = std::min(admitted, admitted_cap);
        gen.setRate(admitted);
        eq.runFor(sim::fromSeconds(settle_s));  // settle at the new rate
        server.clearStats();
        eq.runFor(sim::fromSeconds(measure_s));
        const double p999 = server.latencyMs().percentile(99.9);
        results.push_back({offered, admitted, p999});

        if (load_balancer_cap) {
            // The balancer sheds traffic when tails blow up and slowly
            // re-admits when they recover.
            if (p999 > 40.0)
                admitted_cap = std::max(0.85 * admitted, 0.5 * demand_peak);
            else
                admitted_cap = std::min(demand_peak, admitted_cap * 1.05);
        }
    }
    // Drain in-flight queries before the server is destroyed; the warm
    // queue outlives this datacenter and must hold no dangling events.
    gen.stop();
    eq.runFor(sim::fromSeconds(0.5));
    return results;
}

int
runRackStudy(bool quick)
{
    std::printf("=== Figure 7: 5-day production throughput & 99.9%% "
                "latency, two datacenters ===\n\n");
    const auto t0 = std::chrono::steady_clock::now();

    host::DiurnalTraceParams tp;
    tp.days = quick ? 1 : 5;
    tp.windowsPerDay = quick ? 12 : 48;  // 30-minute windows (full run)
    const auto trace = host::makeDiurnalTrace(tp);
    const double settle_s = quick ? 0.5 : 1.5;
    const double measure_s = quick ? 1.5 : 4.0;

    // One warm EventQueue across both datacenters and all windows.
    sim::EventQueue eq;
    auto sw = runDatacenter(eq, trace, false, true, settle_s, measure_s);
    auto fpga = runDatacenter(eq, trace, true, false, settle_s, measure_s);

    // Normalize: load by the software nominal operating point; latency
    // by the software datacenter's median p99.9 (its healthy tail).
    std::vector<double> sw_tails;
    for (const auto &w : sw)
        sw_tails.push_back(w.p999Ms);
    std::sort(sw_tails.begin(), sw_tails.end());
    const double tail_norm = sw_tails[sw_tails.size() / 2];

    std::printf("normalization: load / %.0f qps, latency / %.2f ms "
                "(software median p99.9)\n\n", kSoftwareNominalQps,
                tail_norm);
    std::printf("  %5s %6s | %9s %9s | %9s %9s\n", "day", "hour",
                "sw load", "sw p99.9", "fpga load", "fpga p99.9");

    double sw_load_sum = 0, fpga_load_sum = 0;
    double sw_tail_peak = 0, fpga_tail_peak = 0;
    double sw_load_peak = 0, fpga_load_peak = 0;
    for (std::size_t w = 0; w < trace.size(); ++w) {
        const double sw_load = sw[w].admittedQps / kSoftwareNominalQps;
        const double fpga_load = fpga[w].admittedQps / kSoftwareNominalQps;
        const double sw_tail = sw[w].p999Ms / tail_norm;
        const double fpga_tail = fpga[w].p999Ms / tail_norm;
        sw_load_sum += sw_load;
        fpga_load_sum += fpga_load;
        sw_tail_peak = std::max(sw_tail_peak, sw_tail);
        fpga_tail_peak = std::max(fpga_tail_peak, fpga_tail);
        sw_load_peak = std::max(sw_load_peak, sw_load);
        fpga_load_peak = std::max(fpga_load_peak, fpga_load);
        if (w % 4 == 0) {  // print every 2 hours
            std::printf("  %5zu %6.1f | %9.2f %9.2f | %9.2f %9.2f\n",
                        w / tp.windowsPerDay,
                        24.0 * (w % tp.windowsPerDay) / tp.windowsPerDay,
                        sw_load, sw_tail, fpga_load, fpga_tail);
        }
    }

    const double n = static_cast<double>(trace.size());
    std::printf("\nsummary (normalized):\n");
    std::printf("  %-34s %10.2f %10.2f\n", "average load (sw / fpga)",
                sw_load_sum / n, fpga_load_sum / n);
    std::printf("  %-34s %10.2f %10.2f\n", "peak load (sw / fpga)",
                sw_load_peak, fpga_load_peak);
    std::printf("  %-34s %10.2f %10.2f\n", "peak p99.9 (sw / fpga)",
                sw_tail_peak, fpga_tail_peak);
    std::printf("\npaper observations reproduced: the software datacenter "
                "shows high-rate latency spikes\nas load varies (balancer "
                "sheds load at peaks); the FPGA-accelerated datacenter "
                "absorbs\n> 2x the load with much lower, tighter-bound "
                "tail latencies.\n\n");

    const double wall_s = wallSeconds(t0);
    const long rss_kb = checkRssBudget();
    const std::string prefix = quick ? "fig07_quick." : "fig07.";
    bench::BenchValues out;
    out[prefix + "windows"] = static_cast<double>(trace.size());
    out[prefix + "events"] = static_cast<double>(eq.eventsExecuted());
    out[prefix + "events_per_s"] =
        wall_s > 0 ? static_cast<double>(eq.eventsExecuted()) / wall_s : 0;
    out[prefix + "wall_s"] = wall_s;
    if (rss_kb >= 0)
        out[prefix + "rss_peak_mb"] = static_cast<double>(rss_kb) / 1024.0;
    out[prefix + "sw_avg_load"] = sw_load_sum / n;
    out[prefix + "fpga_avg_load"] = fpga_load_sum / n;
    bench::mergeBenchJson(kBenchFile, out);
    std::printf("wrote %s (%swindows/wall_s/events_per_s/rss_peak_mb)\n",
                kBenchFile, prefix.c_str());
    return 0;
}

// ---------------------------------------------------------------------------
// --fabric l2: the paper-scale 250k-host campaign
// ---------------------------------------------------------------------------

/** A no-op role so LTL deliveries have a destination. */
struct NullRole : fpga::Role {
    int port = -1;
    std::string name() const override { return "null"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &) override {}
};

/** Deterministic 64-bit mix (same construction as the fluid ECMP hash). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** One cross-pod LTL probe pair and its send-side state. */
struct ProbePair {
    int src = 0;
    int dst = 0;
    std::unique_ptr<NullRole> role;
    core::LtlChannel channel;
};

/** One background flow promoted to packet fidelity for a window. */
struct PromotedFlow {
    std::uint64_t id = 0;
    int dstHost = 0;
    std::unique_ptr<NullRole> role;
    core::LtlChannel channel;
    std::uint64_t bytesSent = 0;
};

struct L2Params {
    int pods = 260;         // 24 x 40 x 260 = 249,600 hosts
    int racksPerPod = 40;
    int hostsPerRack = 24;
    int l2Count = 4;
    int windows = 24;
    sim::TimePs windowLen = 5 * sim::kMillisecond;
    int pairs = 48;         // cross-pod probe pairs
    int pingsPerWindow = 100;
    int flows = 20000;      // fluid background flows
    int promotePerWindow = 16;
    int leasesPerWindow = 4;
    int hostsPerLease = 8;
    std::uint64_t baseFlowBps = 400ull * 1000 * 1000;  // 400 Mbit/s
};

int
runL2Campaign(bool quick, int shard_threads)
{
    L2Params p;
    if (quick) {
        p.windows = 6;
        p.windowLen = 2 * sim::kMillisecond;
        p.pairs = 12;
        p.pingsPerWindow = 40;
        p.flows = 5000;
        p.promotePerWindow = 8;
    }
    const int hosts = p.pods * p.racksPerPod * p.hostsPerRack;
    std::printf("=== Figure 7 (L2 campaign): %d-host flyweight fabric, "
                "hybrid fluid/packet background ===\n\n", hosts);
    std::printf("  %d pods x %d racks x %d hosts, %d probe pairs, %d fluid "
                "flows,\n  %d diurnal windows of %.1f ms, kernel: %s\n\n",
                p.pods, p.racksPerPod, p.hostsPerRack, p.pairs, p.flows,
                p.windows, sim::toMillis(p.windowLen),
                shard_threads > 0 ? "sharded" : "single-queue");
    const auto t0 = std::chrono::steady_clock::now();

    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = p.hostsPerRack;
    cfg.topology.racksPerPod = p.racksPerPod;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = p.pods;
    cfg.topology.l2Count = p.l2Count;
    cfg.createNics = false;  // pure-LTL study: no host NICs
    cfg.lazyHosts = true;
    cfg.shellTemplate.ltl.maxConnections = 64;
    // A shell can be probe destination and promoted-flow sink at once.
    cfg.shellTemplate.roleSlots = 8;

    // --- live telemetry (opt-in via CCSIM_TS=<path>): the hub rolls
    // every watched metric into 250 us windows on barrier deadlines, so
    // the JSONL stream and the alert timeline are byte-identical across
    // --shards values. Feed the stream to tools/ccsim_report.
    const std::string tsPath = obs::TimeSeriesHub::envPath();
    std::unique_ptr<obs::TimeSeriesHub> tsHub;
    std::unique_ptr<obs::SloEngine> slo;
    std::ofstream tsOut;
    if (!tsPath.empty()) {
        tsHub = std::make_unique<obs::TimeSeriesHub>(
            obs::TimeSeriesConfig{}
                .withWindow(250 * sim::kMicrosecond)
                .withInclude(
                    {"ltl.*", "sim.*", "haas.*", "ts.*", "slo.*"}));
        tsHub->defineAggregate("fleet.rtt_us", "ltl.*.rtt_us");
        tsHub->defineAggregate("fleet.retransmits", "ltl.*.retransmits");
        tsOut.open(tsPath);
        if (!tsOut)
            sim::fatalf("fig07: cannot write CCSIM_TS path ", tsPath);
        tsHub->exportTo(&tsOut);
        cfg.timeSeries = tsHub.get();
    }

    // Either kernel; the campaign is byte-identical across thread counts.
    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<sim::ShardedEventQueue> sq;
    std::unique_ptr<obs::Observability> hub;
    std::unique_ptr<obs::ShardedObservability> shardHubs;
    std::unique_ptr<core::ConfigurableCloud> cloud;
    if (shard_threads > 0) {
        cfg.shards = shard_threads;
        shardHubs =
            std::make_unique<obs::ShardedObservability>(p.pods + 1);
        cfg.shardObs = shardHubs.get();
        sq = std::make_unique<sim::ShardedEventQueue>(
            core::ConfigurableCloud::shardPlan(cfg));
        cloud = std::make_unique<core::ConfigurableCloud>(*sq, cfg);
    } else {
        hub = std::make_unique<obs::Observability>();
        cfg.obs = hub.get();
        eq = std::make_unique<sim::EventQueue>();
        cloud = std::make_unique<core::ConfigurableCloud>(*eq, cfg);
    }
    net::Topology &topo = cloud->topology();

    if (tsHub) {
        // Fleet SLOs over the aggregate series. The RTT objective is the
        // paper's headline health signal; the retransmit objective only
        // burns budget during a storm (e.g. an injected link fault).
        slo = std::make_unique<obs::SloEngine>(*tsHub);
        obs::SloObjective rttObj;
        rttObj.name = "fleet_rtt_p99";
        slo->addObjective(
            rttObj.on("fleet.rtt_us")
                .where(obs::SloStat::kP99, obs::SloCmp::kLt, 100.0)
                .withBudget(0.10)
                .withWindows(40, 5)
                .withBurnThreshold(2.0));
        obs::SloObjective rtxObj;
        rtxObj.name = "fleet_retransmits";
        slo->addObjective(
            rtxObj.on("fleet.retransmits")
                .where(obs::SloStat::kDelta, obs::SloCmp::kLt, 200.0)
                .withBudget(0.10)
                .withWindows(40, 5)
                .withBurnThreshold(2.0));
        slo->attachObservability(sq ? shardHubs->shard(0).registry
                                    : hub->registry);
    }

    const double build_s = wallSeconds(t0);
    std::printf("build: %.2f s, %d/%d servers materialized\n", build_s,
                cloud->materializedServers(), cloud->numServers());

    const auto runFor = [&](sim::TimePs d) {
        if (sq)
            sq->runFor(d);
        else
            eq->runFor(d);
    };
    const auto eventsExecuted = [&] {
        return sq ? sq->eventsExecuted() : eq->eventsExecuted();
    };
    const auto histFor = [&](int src) -> sim::LogHistogram & {
        obs::Observability &h =
            sq ? shardHubs->shard(cloud->partitionOf(src)) : *hub;
        return h.registry.histogram("ltl.node" + std::to_string(src) +
                                    ".rtt_us");
    };

    // --- cross-pod probe pairs (distinct pods, so src engines are
    // distinct and each rtt histogram belongs to exactly one pair) ---
    std::vector<ProbePair> probes;
    for (int k = 0; k < p.pairs; ++k) {
        ProbePair pr;
        const int src_pod = (4 * k + 1) % p.pods;
        const int dst_pod = (4 * k + 3) % p.pods;
        pr.src = topo.hostIndex(src_pod, k % p.racksPerPod,
                                k % p.hostsPerRack);
        pr.dst = topo.hostIndex(dst_pod, (3 * k + 1) % p.racksPerPod,
                                (5 * k + 2) % p.hostsPerRack);
        pr.role = std::make_unique<NullRole>();
        if (cloud->shell(pr.dst).addRole(pr.role.get()) < 0)
            sim::fatal("fig07 l2: no role slot on probe destination");
        pr.channel = cloud->openLtl(pr.src, pr.dst, pr.role->port);
        probes.push_back(std::move(pr));
    }

    // --- hybrid fluid/packet background ---
    auto fluid = sq ? std::make_unique<net::FluidTrafficModel>(*sq, topo)
                    : std::make_unique<net::FluidTrafficModel>(*eq, topo);
    // The probe paths are the monitored paths: background flows whose
    // ECMP path shares a probe trunk get promoted to packet fidelity.
    for (const auto &pr : probes)
        for (net::Channel *c : topo.fluidPath(pr.src, pr.dst))
            fluid->setMonitored(c, true);

    std::vector<std::uint64_t> flowIds;
    flowIds.reserve(static_cast<std::size_t>(p.flows));
    for (int i = 0; i < p.flows; ++i) {
        const auto u = static_cast<std::uint64_t>(i);
        const int src = static_cast<int>(mix64(u * 2 + 1) %
                                         static_cast<std::uint64_t>(hosts));
        int dst = static_cast<int>(mix64(u * 2 + 2) %
                                   static_cast<std::uint64_t>(hosts));
        if (dst == src)
            dst = (dst + 1) % hosts;
        flowIds.push_back(fluid->addFlow(src, dst, p.baseFlowBps));
    }

    host::DiurnalTraceParams tp;
    tp.days = 1;
    tp.windowsPerDay = p.windows;
    const auto trace = host::makeDiurnalTrace(tp);

    // Per-window flow rate: diurnal multiplier with a per-pod imbalance
    // factor in [0.5, 1.5) so some trunks run hot.
    const auto flowRate = [&](std::uint64_t id, int window) {
        const net::FluidFlow *f = fluid->flow(id);
        const int src_pod = cloud->partitionOf(f->srcHost);
        const std::uint64_t h =
            mix64((static_cast<std::uint64_t>(src_pod) << 20) ^
                  static_cast<std::uint64_t>(window));
        const double imbalance = 0.5 + static_cast<double>(h % 1000) / 1000.0;
        return static_cast<std::uint64_t>(
            static_cast<double>(p.baseFlowBps) * trace[window] * imbalance);
    };

    // --- the campaign ---
    sim::LogHistogram rtt(obs::kDefaultHistMinValue,
                          obs::kDefaultHistBinsPerOctave);
    haas::ResourceManager &rm = cloud->resourceManager();
    std::uint64_t leaseChurn = 0, promotedTotal = 0;
    std::printf("\n  %6s %8s %10s %10s %10s\n", "window", "load",
                "promoted", "leases", "matrlzd");
    for (int w = 0; w < p.windows; ++w) {
        // (1) retune every background flow to this window's rate (the
        // fold is exact: totals are independent of this schedule).
        for (std::uint64_t id : flowIds)
            fluid->setRate(id, flowRate(id, w));

        // (2) promote flows crossing the monitored probe trunks; their
        // bytes run as real LTL traffic for this window.
        std::vector<PromotedFlow> promoted;
        for (std::uint64_t id : fluid->flowsCrossingMonitored()) {
            if (static_cast<int>(promoted.size()) >= p.promotePerWindow)
                break;
            const net::FluidFlow *f = fluid->flow(id);
            PromotedFlow pf;
            pf.id = id;
            pf.dstHost = f->dstHost;
            pf.role = std::make_unique<NullRole>();
            if (cloud->shell(f->dstHost).addRole(pf.role.get()) < 0)
                continue;  // destination shell's role slots exhausted
            fluid->promote(id);
            pf.channel =
                cloud->openLtl(f->srcHost, f->dstHost, pf.role->port);
            promoted.push_back(std::move(pf));
        }
        promotedTotal += promoted.size();

        // (3) schedule this window's traffic: probe pings at an idle
        // 20 us spacing, promoted flows as 1 KiB messages at their rate.
        for (auto &pr : probes) {
            auto *engine = cloud->shell(pr.src).ltlEngine();
            auto &q = cloud->queueFor(pr.src);
            for (int i = 0; i < p.pingsPerWindow; ++i) {
                q.scheduleAfter(i * 20 * sim::kMicrosecond,
                                [engine, conn = pr.channel.sendConn()] {
                                    engine->sendMessage(conn, 64);
                                });
            }
        }
        for (auto &pf : promoted) {
            const net::FluidFlow *f = fluid->flow(pf.id);
            const std::uint64_t rate = flowRate(pf.id, w);
            constexpr std::uint32_t kMsgBytes = 1024;
            const auto gap = static_cast<sim::TimePs>(
                (8.0 * kMsgBytes / static_cast<double>(rate)) *
                static_cast<double>(sim::kSecond));
            auto *engine = cloud->shell(f->srcHost).ltlEngine();
            auto &q = cloud->queueFor(f->srcHost);
            // Fill ~60% of the window, leaving tail room for delivery.
            const auto budget =
                static_cast<sim::TimePs>(0.6 * p.windowLen);
            for (sim::TimePs t = gap; t < budget; t += gap) {
                q.scheduleAfter(t, [engine,
                                    conn = pf.channel.sendConn()] {
                    engine->sendMessage(conn, kMsgBytes);
                });
                pf.bytesSent += kMsgBytes;
            }
        }

        runFor(p.windowLen);

        // (4) back across the fidelity boundary: credit the delivered
        // packet bytes and return the flows to the fluid regime.
        for (auto &pf : promoted) {
            fluid->creditPacketBytes(pf.id, pf.bytesSent);
            fluid->demote(pf.id, flowRate(pf.id, w));
            cloud->shell(pf.dstHost).removeRole(pf.role->port);
        }
        promoted.clear();  // closes the LTL channels

        // (5) HaaS lease churn against flyweight stubs: each manager()
        // touch materializes the leased server through the resolver.
        for (int j = 0; j < p.leasesPerWindow; ++j) {
            haas::LeaseConstraints lc;
            lc.requirePod = (13 * w + 7 * j + 2) % p.pods;
            auto lease = rm.acquire("fig07.l2", p.hostsPerLease, lc);
            if (!lease)
                sim::fatal("fig07 l2: lease acquisition failed");
            for (int host : lease->hosts)
                if (rm.manager(host) == nullptr)
                    sim::fatal("fig07 l2: stub resolver returned null");
            leaseChurn += lease->hosts.size();
            rm.release(lease->id);
        }

        std::printf("  %6d %8.2f %10llu %10d %10d\n", w, trace[w],
                    static_cast<unsigned long long>(promotedTotal),
                    p.leasesPerWindow, cloud->materializedServers());
    }

    // Drain in-flight frames, then harvest the probe RTT histograms.
    runFor(2 * p.windowLen);
    for (const auto &pr : probes)
        rtt.merge(histFor(pr.src));

    // --- invariants ---
    fluid->foldAll();
    const net::FluidConservation c = fluid->verify();
    if (!c.ok)
        sim::fatalf("fig07 l2: fluid conservation violated: channel "
                    "credits ", c.channelCredits, " != expected ",
                    c.expectedChannelCredits);
    std::printf("\nfluid conservation: OK (%llu flows, %llu fluid bytes, "
                "%llu packet bytes)\n",
                static_cast<unsigned long long>(c.flows),
                static_cast<unsigned long long>(c.fluidBytes),
                static_cast<unsigned long long>(c.packetBytes));

    const auto mem = cloud->fabricMemoryStats();
    const double wall_s = wallSeconds(t0);
    const long rss_kb = checkRssBudget();
    const double evps =
        wall_s > 0 ? static_cast<double>(eventsExecuted()) / wall_s : 0;

    std::printf("\ncross-pod LTL round trips (%llu samples):\n",
                static_cast<unsigned long long>(rtt.count()));
    std::printf("  %-20s %10.2f us\n", "mean", rtt.mean());
    std::printf("  %-20s %10.2f us\n", "p99", rtt.percentile(99.0));
    std::printf("  %-20s %10.2f us\n", "p99.9", rtt.percentile(99.9));
    std::printf("\nfabric: %d/%d servers materialized, %zu switches, "
                "%zu links, ~%.0f B/host amortized\n",
                mem.materializedHosts, mem.hosts, mem.switches,
                mem.fabricLinks, mem.bytesPerHost);
    std::printf("campaign: %.1f s wall, %.2f M events/s, %llu leases "
                "churned, %llu promotions\n", wall_s, evps / 1e6,
                static_cast<unsigned long long>(leaseChurn),
                static_cast<unsigned long long>(promotedTotal));
    if (tsHub) {
        std::printf("telemetry: %llu windows, %llu series, %llu JSONL "
                    "lines -> %s; %llu alerts fired\n",
                    static_cast<unsigned long long>(tsHub->windowsClosed()),
                    static_cast<unsigned long long>(tsHub->seriesCount()),
                    static_cast<unsigned long long>(tsHub->exportedLines()),
                    tsPath.c_str(),
                    static_cast<unsigned long long>(slo->alertsFired()));
    }

    const std::string prefix = quick ? "fig07_l2_quick." : "fig07_l2.";
    bench::BenchValues out;
    out[prefix + "hosts"] = static_cast<double>(mem.hosts);
    out[prefix + "materialized_hosts"] =
        static_cast<double>(mem.materializedHosts);
    out[prefix + "rtt_p99_us"] = rtt.percentile(99.0);
    out[prefix + "rtt_p999_us"] = rtt.percentile(99.9);
    out[prefix + "events_per_s"] = evps;
    out[prefix + "wall_s"] = wall_s;
    out[prefix + "lease_churn"] = static_cast<double>(leaseChurn);
    out[prefix + "fluid_flows"] = static_cast<double>(c.flows);
    out[prefix + "promotions"] = static_cast<double>(promotedTotal);
    out[prefix + "conservation_ok"] = c.ok ? 1.0 : 0.0;
    if (tsHub) {
        out[prefix + "ts_windows"] =
            static_cast<double>(tsHub->windowsClosed());
        out[prefix + "ts_lines"] =
            static_cast<double>(tsHub->exportedLines());
        out[prefix + "slo_alerts"] =
            static_cast<double>(slo->alertsFired());
    }
    if (rss_kb >= 0)
        out[prefix + "rss_peak_mb"] = static_cast<double>(rss_kb) / 1024.0;
    bench::mergeBenchJson(kBenchFile, out);
    std::printf("wrote %s (%shosts/rtt_p99_us/rss_peak_mb/...)\n",
                kBenchFile, prefix.c_str());
    return 0;
}

// ---------------------------------------------------------------------------
// --chaos: correlated-failure campaign on the L2 fabric
// ---------------------------------------------------------------------------

/**
 * A ranking-service stand-in that records every delivered query ID, so
 * the campaign can account for each issued query receiver-side (dedup
 * by ID; a query re-sent after a failover counts once).
 */
struct QueryRole : fpga::Role {
    int port = -1;
    std::vector<std::uint64_t> delivered;
    std::size_t harvested = 0;  ///< prefix already consumed by the driver
    std::string name() const override { return "chaos-rank"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &msg) override
    {
        // LTL deliveries arrive wrapped: the query ID rides in the
        // delivery's application payload.
        const auto d =
            std::static_pointer_cast<fpga::LtlDelivery>(msg->payload);
        if (d && d->appPayload)
            delivered.push_back(
                *std::static_pointer_cast<std::uint64_t>(d->appPayload));
    }
};

struct ChaosParams {
    int pods = 260;  // the fig07 L2 fabric: 24 x 40 x 260 = 249,600
    int racksPerPod = 40;
    int hostsPerRack = 24;
    int l2Count = 4;
    int windows = 16;  ///< scripted campaign windows
    sim::TimePs windowLen = 5 * sim::kMillisecond;
    int drainWindows = 20;  ///< extra windows to flush re-sent queries
    int instances = 8;      ///< ranking-service instances
    int maxPerRack = 2;     ///< anti-affinity: service FPGAs per rack
    int maxPerPod = 6;      ///< anti-affinity: service FPGAs per pod
    int queriesPerSlot = 20;  ///< fresh queries per instance per window
    int pairs = 8;            ///< healthy-pod probe pairs
    int pingsPerWindow = 40;
    int flows = 8000;  ///< fluid background flows
    std::uint64_t flowBps = 200ull * 1000 * 1000;
    sim::TimePs migrationGap = 150 * sim::kMicrosecond;
    sim::TimePs chaosPoll = 50 * sim::kMicrosecond;
};

int
runChaosCampaign(bool quick, int shard_threads, bool anti_affinity)
{
    ChaosParams p;
    if (quick) {
        p.windows = 10;
        p.windowLen = 2 * sim::kMillisecond;
        p.instances = 8;
        p.queriesPerSlot = 10;
        p.pairs = 6;
        p.pingsPerWindow = 20;
        p.flows = 3000;
    }
    const int hosts = p.pods * p.racksPerPod * p.hostsPerRack;
    std::printf("=== Chaos campaign: correlated failure domains on the "
                "%d-host L2 fabric ===\n\n", hosts);
    std::printf("  %d-instance ranking service, anti-affinity %s "
                "(rack cap %d, pod cap %d),\n  %d windows of %.1f ms, "
                "migration gap %.0f us, kernel: %s\n\n",
                p.instances, anti_affinity ? "ON" : "OFF (ablation)",
                p.maxPerRack, p.maxPerPod, p.windows,
                sim::toMillis(p.windowLen), sim::toMicros(p.migrationGap),
                shard_threads > 0 ? "sharded" : "single-queue");
    const auto t0 = std::chrono::steady_clock::now();

    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = p.hostsPerRack;
    cfg.topology.racksPerPod = p.racksPerPod;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = p.pods;
    cfg.topology.l2Count = p.l2Count;
    cfg.createNics = false;
    cfg.lazyHosts = true;
    cfg.shellTemplate.ltl.maxConnections = 64;
    cfg.shellTemplate.roleSlots = 8;

    // Live telemetry (opt-in via CCSIM_TS): same stream as the l2
    // campaign, plus the ChaosEngine's injected/detected markers — the
    // JSONL is byte-identical across --shards values.
    const std::string tsPath = obs::TimeSeriesHub::envPath();
    std::unique_ptr<obs::TimeSeriesHub> tsHub;
    std::unique_ptr<obs::SloEngine> slo;
    std::ofstream tsOut;
    if (!tsPath.empty()) {
        tsHub = std::make_unique<obs::TimeSeriesHub>(
            obs::TimeSeriesConfig{}
                .withWindow(250 * sim::kMicrosecond)
                .withInclude({"ltl.*", "sim.*", "haas.*", "fault.*",
                              "chaos.*", "ts.*", "slo.*"}));
        tsHub->defineAggregate("fleet.rtt_us", "ltl.*.rtt_us");
        tsHub->defineAggregate("fleet.retransmits", "ltl.*.retransmits");
        tsOut.open(tsPath);
        if (!tsOut)
            sim::fatalf("fig07 chaos: cannot write CCSIM_TS path ", tsPath);
        tsHub->exportTo(&tsOut);
        cfg.timeSeries = tsHub.get();
    }

    std::unique_ptr<sim::EventQueue> eq;
    std::unique_ptr<sim::ShardedEventQueue> sq;
    std::unique_ptr<obs::Observability> hub;
    std::unique_ptr<obs::ShardedObservability> shardHubs;
    std::unique_ptr<core::ConfigurableCloud> cloud;
    if (shard_threads > 0) {
        cfg.shards = shard_threads;
        shardHubs =
            std::make_unique<obs::ShardedObservability>(p.pods + 1);
        cfg.shardObs = shardHubs.get();
        sq = std::make_unique<sim::ShardedEventQueue>(
            core::ConfigurableCloud::shardPlan(cfg));
        cloud = std::make_unique<core::ConfigurableCloud>(*sq, cfg);
    } else {
        hub = std::make_unique<obs::Observability>();
        cfg.obs = hub.get();
        eq = std::make_unique<sim::EventQueue>();
        cloud = std::make_unique<core::ConfigurableCloud>(*eq, cfg);
    }
    net::Topology &topo = cloud->topology();
    // The control plane (RM, SM, HealthMonitor) lives on the spine
    // partition, like the cloud's own resource manager.
    sim::EventQueue &ctlq = sq ? sq->partition(p.pods) : *eq;
    obs::Observability *ctlHub =
        sq ? &shardHubs->shard(0) : hub.get();

    if (tsHub) {
        slo = std::make_unique<obs::SloEngine>(*tsHub);
        obs::SloObjective rttObj;
        rttObj.name = "fleet_rtt_p99";
        slo->addObjective(
            rttObj.on("fleet.rtt_us")
                .where(obs::SloStat::kP99, obs::SloCmp::kLt, 100.0)
                .withBudget(0.10)
                .withWindows(40, 5)
                .withBurnThreshold(2.0));
        slo->attachObservability(ctlHub->registry);
    }

    const auto runFor = [&](sim::TimePs d) {
        if (sq)
            sq->runFor(d);
        else
            eq->runFor(d);
    };
    const auto eventsExecuted = [&] {
        return sq ? sq->eventsExecuted() : eq->eventsExecuted();
    };
    const auto nowPs = [&] { return sq ? sq->now() : eq->now(); };
    const auto histFor = [&](int src) -> sim::LogHistogram & {
        obs::Observability &h =
            sq ? shardHubs->shard(cloud->partitionOf(src)) : *hub;
        return h.registry.histogram("ltl.node" + std::to_string(src) +
                                    ".rtt_us");
    };

    // --- the ranking service, placed with (or without) anti-affinity ---
    haas::ResourceManager &rm = cloud->resourceManager();
    std::vector<std::unique_ptr<QueryRole>> rolePool;
    std::map<int, QueryRole *> roleOf;  // live instance host -> role
    haas::ServiceManager sm(ctlq, rm, "rank", [&](int host) {
        rolePool.push_back(std::make_unique<QueryRole>());
        roleOf[host] = rolePool.back().get();
        return rolePool.back().get();
    });
    haas::LeaseConstraints lc;
    if (anti_affinity)
        lc.withAntiAffinity(p.maxPerRack, p.maxPerPod);
    // Mass-migration throttle: self-pumped on the legacy kernel, pumped
    // by the ChaosEngine at barriers on the sharded one.
    sm.setMigrationPolicy(p.migrationGap, /*self_pump=*/sq == nullptr);
    sm.enableAutoHeal(p.instances, lc);
    if (!sm.deploy(p.instances, lc))
        sim::fatal("fig07 chaos: service deploy failed");
    sm.attachObservability(ctlHub);
    const std::vector<int> deployed = sm.instances();

    // The drill kills the TOR of the first instance's rack.
    const int victimPod = topo.host(deployed[0]).pod;
    const int victimRack = topo.host(deployed[0]).rack;
    int rackCasualties = 0;
    for (int h : deployed)
        if (topo.host(h).pod == victimPod && topo.host(h).rack == victimRack)
            ++rackCasualties;

    // --- domain-aware health monitoring over a watch set: the full
    // rack of every service instance plus a healthy control rack ---
    std::set<int> watchSet;
    const auto watchRack = [&](int pod, int rack) {
        const int base = topo.hostIndex(pod, rack, 0);
        for (int i = 0; i < p.hostsPerRack; ++i)
            watchSet.insert(base + i);
    };
    for (int h : deployed)
        watchRack(topo.host(h).pod, topo.host(h).rack);
    watchRack(100, 0);  // control rack, far from every fault
    haas::HealthMonitorConfig hmc;
    hmc.withHeartbeat(100 * sim::kMicrosecond, 10 * sim::kMicrosecond)
        // Streak weight 0: the drill isolates the heartbeat/domain path,
        // so legacy and sharded kernels reach identical verdicts (passive
        // LTL suspicion is legacy-only).
        .withSuspicion(3.0, 1.0, 0.0)
        .withDomainConviction(/*sweeps=*/2, /*min_hosts=*/p.hostsPerRack);
    haas::HealthMonitor hm(ctlq, rm, hmc);
    cloud->attachHealthMonitor(hm);
    hm.watchHosts({watchSet.begin(), watchSet.end()});
    hm.attachObservability(ctlHub);

    // --- fault injector (detection is the monitor's job) ---
    fault::FaultConfig fc;
    fc.withSeed(42).withSelfReport(false);
    auto injector =
        sq ? std::make_unique<fault::FaultInjector>(*sq, *cloud, fc)
           : std::make_unique<fault::FaultInjector>(*eq, *cloud, fc);

    // --- fluid background (flows through the dead rack must stall,
    // conservation stays exact) ---
    auto fluid = sq ? std::make_unique<net::FluidTrafficModel>(*sq, topo)
                    : std::make_unique<net::FluidTrafficModel>(*eq, topo);
    for (int i = 0; i < p.flows; ++i) {
        const auto u = static_cast<std::uint64_t>(i);
        const int src = static_cast<int>(mix64(u * 2 + 1) %
                                         static_cast<std::uint64_t>(hosts));
        int dst = static_cast<int>(mix64(u * 2 + 2) %
                                   static_cast<std::uint64_t>(hosts));
        if (dst == src)
            dst = (dst + 1) % hosts;
        fluid->addFlow(src, dst, p.flowBps);
    }

    // --- healthy-pod probe pairs (the containment yardstick) ---
    std::vector<ProbePair> probes;
    for (int k = 0; k < p.pairs; ++k) {
        ProbePair pr;
        pr.src = topo.hostIndex(30 + 3 * k, k % p.racksPerPod,
                                k % p.hostsPerRack);
        pr.dst = topo.hostIndex(150 + 5 * k, (3 * k + 1) % p.racksPerPod,
                                (5 * k + 2) % p.hostsPerRack);
        pr.role = std::make_unique<NullRole>();
        if (cloud->shell(pr.dst).addRole(pr.role.get()) < 0)
            sim::fatal("fig07 chaos: no role slot on probe destination");
        pr.channel = cloud->openLtl(pr.src, pr.dst, pr.role->port);
        probes.push_back(std::move(pr));
    }

    // --- the scripted drill ---
    const sim::TimePs torAt = p.windowLen + p.windowLen / 2;
    const sim::TimePs grayAt = 4 * p.windowLen + p.windowLen / 4;
    const sim::TimePs grayClearAt = grayAt + p.windowLen;
    const sim::TimePs maintAt = 6 * p.windowLen;
    sim::TimePs detectedAt = -1;
    sim::TimePs evacuatedAt = -1;
    fault::ChaosScenario scenario;
    scenario
        .withPhase("tor-death", torAt,
                   [&] { injector->failTor(victimPod, victimRack); })
        .withTriggeredPhase(
            "rack-convicted", torAt,
            [&] { return hm.domainConvictions() > 0; },
            [&] { detectedAt = nowPs(); })
        .withTriggeredPhase(
            "evacuated", torAt,
            [&] {
                if (detectedAt < 0 ||
                    static_cast<int>(sm.instances().size()) < p.instances)
                    return false;
                for (int h : sm.instances())
                    if (topo.host(h).pod == victimPod &&
                        topo.host(h).rack == victimRack)
                        return false;
                return true;
            },
            [&] { evacuatedAt = nowPs(); })
        .withPhase("gray-spine", grayAt,
                   [&] {
                       injector->graySpineDegrade(2, 0.001,
                                                  500 * sim::kNanosecond);
                   })
        .withPhase("gray-clear", grayClearAt,
                   [&] { injector->graySpineClear(2); })
        .withPhase("maintenance-drain", maintAt, [&] {
            injector->rollingMaintenance(130, 50 * sim::kMicrosecond,
                                         60 * sim::kMicrosecond);
        });
    auto chaos =
        sq ? std::make_unique<fault::ChaosEngine>(*sq, std::move(scenario))
           : std::make_unique<fault::ChaosEngine>(*eq, std::move(scenario));
    chaos->setPollPeriod(p.chaosPoll);
    chaos->setFluidModel(fluid.get());
    if (tsHub)
        chaos->setMarkerHub(tsHub.get());
    if (sq)
        chaos->manageService(&sm);  // barrier-driven migration pump
    chaos->watchHealth(&hm);
    chaos->attachObservability(ctlHub);

    if (sq)
        hm.startSharded(*sq);
    else
        hm.start();
    chaos->start();

    const double build_s = wallSeconds(t0);
    std::printf("build: %.2f s, %d/%d servers materialized, victim rack "
                "(%d,%d) holds %d/%d instances\n", build_s,
                cloud->materializedServers(), cloud->numServers(),
                victimPod, victimRack, rackCasualties, p.instances);

    // --- live query traffic with receiver-side accounting ---
    struct Slot {
        int instanceHost = -1;
        int client = -1;
        core::LtlChannel ch;
    };
    const std::vector<int> clientHosts = {
        topo.hostIndex(40, 0, 0), topo.hostIndex(80, 0, 0),
        topo.hostIndex(120, 0, 0), topo.hostIndex(200, 0, 0)};
    std::vector<Slot> slots(static_cast<std::size_t>(p.instances));

    // Re-point each slot at the service's current instance list; a slot
    // whose instance failed over reopens its channel to the replacement.
    const auto refreshSlots = [&] {
        const auto &inst = sm.instances();
        for (std::size_t s = 0; s < slots.size(); ++s) {
            if (s >= inst.size()) {
                slots[s].ch.close();
                slots[s].instanceHost = -1;
                continue;
            }
            const int h = inst[s];
            if (slots[s].instanceHost == h && slots[s].ch)
                continue;
            slots[s].ch.close();
            slots[s].instanceHost = -1;
            const auto rit = roleOf.find(h);
            if (rit == roleOf.end() || rit->second->port < 0)
                continue;
            slots[s].client =
                clientHosts[s % clientHosts.size()];
            slots[s].ch = cloud->openLtl(slots[s].client, h,
                                         rit->second->port);
            slots[s].instanceHost = h;
        }
    };

    std::uint64_t nextId = 0;
    std::vector<char> done;  // delivered flag per query ID
    std::uint64_t deliveredCount = 0, duplicates = 0, resends = 0;
    std::vector<std::uint64_t> pending;  // awaiting (re)send

    // Round-robin @p batch over the open slots, 5 us apart per slot.
    const auto sendQueries = [&](const std::vector<std::uint64_t> &ids) {
        std::vector<std::size_t> open;
        for (std::size_t s = 0; s < slots.size(); ++s)
            if (slots[s].ch)
                open.push_back(s);
        if (open.empty())
            return false;
        // Spread each slot's queries across ~80% of the window so the
        // drill's injections land on live in-flight traffic.
        const std::size_t perSlot =
            (ids.size() + open.size() - 1) / open.size();
        const sim::TimePs spacing =
            (p.windowLen * 4 / 5) / static_cast<sim::TimePs>(perSlot + 1);
        std::vector<int> onSlot(slots.size(), 0);
        std::size_t k = 0;
        for (const std::uint64_t id : ids) {
            const std::size_t si = open[k++ % open.size()];
            Slot &sl = slots[si];
            const sim::TimePs at =
                static_cast<sim::TimePs>(onSlot[si]++ + 1) * spacing;
            auto *engine = cloud->shell(sl.client).ltlEngine();
            auto &q = cloud->queueFor(sl.client);
            q.scheduleAfter(at, [engine, conn = sl.ch.sendConn(), id] {
                engine->sendMessage(conn, 256,
                                    std::make_shared<std::uint64_t>(id));
            });
        }
        return true;
    };

    // Consume each role's newly delivered IDs (dedup across re-sends).
    const auto harvest = [&] {
        for (const auto &r : rolePool) {
            for (; r->harvested < r->delivered.size(); ++r->harvested) {
                const std::uint64_t id = r->delivered[r->harvested];
                if (done[id]) {
                    ++duplicates;
                    continue;
                }
                done[id] = 1;
                ++deliveredCount;
            }
        }
    };

    std::printf("\n  %6s %8s %10s %10s %10s %8s\n", "window", "issued",
                "delivered", "pending", "instances", "phases");
    int windowsRun = 0;
    for (int w = 0; w < p.windows + p.drainWindows; ++w) {
        const bool scripted = w < p.windows;
        if (!scripted && pending.empty())
            break;
        refreshSlots();
        std::vector<std::uint64_t> batch = std::move(pending);
        pending.clear();
        resends += batch.size();
        if (scripted) {
            for (int s = 0; s < p.instances; ++s)
                for (int i = 0; i < p.queriesPerSlot; ++i) {
                    batch.push_back(nextId++);
                    done.push_back(0);
                }
        }
        sendQueries(batch);
        if (scripted) {
            for (auto &pr : probes) {
                auto *engine = cloud->shell(pr.src).ltlEngine();
                auto &q = cloud->queueFor(pr.src);
                for (int i = 0; i < p.pingsPerWindow; ++i)
                    q.scheduleAfter(i * 20 * sim::kMicrosecond,
                                    [engine,
                                     conn = pr.channel.sendConn()] {
                                        engine->sendMessage(conn, 64);
                                    });
            }
        }
        runFor(p.windowLen);
        ++windowsRun;
        harvest();
        for (const std::uint64_t id : batch)
            if (!done[id])
                pending.push_back(id);
        std::printf("  %6d %8llu %10llu %10zu %10zu %8llu\n", w,
                    static_cast<unsigned long long>(nextId),
                    static_cast<unsigned long long>(deliveredCount),
                    pending.size(), sm.instances().size(),
                    static_cast<unsigned long long>(chaos->phasesFired()));
    }

    // Drain in-flight frames, then harvest probe RTTs.
    runFor(2 * p.windowLen);
    harvest();
    sim::LogHistogram rtt(obs::kDefaultHistMinValue,
                          obs::kDefaultHistBinsPerOctave);
    for (const auto &pr : probes)
        rtt.merge(histFor(pr.src));

    // --- verdicts ---
    bool ok = true;
    const std::uint64_t issued = nextId;
    const std::uint64_t lost = issued - deliveredCount;
    std::printf("\nchaos zero-lost-queries: %s (issued=%llu delivered=%llu "
                "duplicates=%llu lost=%llu)\n", lost == 0 ? "OK" : "FAIL",
                static_cast<unsigned long long>(issued),
                static_cast<unsigned long long>(deliveredCount),
                static_cast<unsigned long long>(duplicates),
                static_cast<unsigned long long>(lost));
    ok = ok && lost == 0;

    const sim::TimePs convBound =
        hm.domainDetectionBound() + 2 * p.chaosPoll;
    const sim::TimePs convLatency = detectedAt >= 0 ? detectedAt - torAt : -1;
    const bool convOk = detectedAt >= 0 && convLatency <= convBound &&
                        hm.domainConvictions() == 1 && hm.detections() == 0;
    std::printf("chaos rack conviction: %s (latency=%.0f us <= bound=%.0f "
                "us; convictions=%llu, per-host detections=%llu)\n",
                convOk ? "OK" : "FAIL", sim::toMicros(convLatency),
                sim::toMicros(convBound),
                static_cast<unsigned long long>(hm.domainConvictions()),
                static_cast<unsigned long long>(hm.detections()));
    ok = ok && convOk;

    const sim::TimePs evacBound =
        static_cast<sim::TimePs>(rackCasualties) * p.migrationGap +
        2 * p.chaosPoll;
    const sim::TimePs evacLatency =
        evacuatedAt >= 0 && detectedAt >= 0 ? evacuatedAt - detectedAt : -1;
    const bool paced = sm.migrationsQueued() == 0 ||
                       sm.minMigrationGapObserved() >= p.migrationGap;
    const bool evacOk = evacuatedAt >= 0 && evacLatency <= evacBound && paced;
    std::printf("chaos evacuation: %s (latency=%.0f us <= bound=%.0f us; "
                "queued=%llu, min gap=%.0f us)\n", evacOk ? "OK" : "FAIL",
                sim::toMicros(evacLatency), sim::toMicros(evacBound),
                static_cast<unsigned long long>(sm.migrationsQueued()),
                sm.minMigrationGapObserved() == sim::kTimeNever
                    ? -1.0
                    : sim::toMicros(sm.minMigrationGapObserved()));
    ok = ok && evacOk;

    const double p99 = rtt.percentile(99.0);
    const bool sloOk = p99 < 150.0;
    const bool contained = rackCasualties <= p.maxPerRack;
    if (anti_affinity) {
        std::printf("chaos containment: %s (rack casualties=%d <= cap=%d; "
                    "healthy-pod rtt p99=%.2f us < 150 us)\n",
                    contained && sloOk ? "OK" : "FAIL", rackCasualties,
                    p.maxPerRack, p99);
        ok = ok && contained && sloOk;
    } else {
        // The ablation must demonstrably violate containment: without
        // anti-affinity, first-fit stacks the whole service behind one
        // TOR and the death takes every instance at once.
        std::printf("chaos containment: %s (rack casualties=%d of %d, cap "
                    "disabled; healthy-pod rtt p99=%.2f us)\n",
                    !contained ? "VIOLATED (expected)" : "FAIL",
                    rackCasualties, p.instances, p99);
        ok = ok && !contained && sloOk;
    }

    fluid->foldAll();
    const net::FluidConservation c = fluid->verify();
    std::printf("fluid conservation: %s (%llu flows, %llu fluid bytes)\n",
                c.ok ? "OK" : "FAIL",
                static_cast<unsigned long long>(c.flows),
                static_cast<unsigned long long>(c.fluidBytes));
    ok = ok && c.ok;

    const bool phasesOk = chaos->done();
    if (!phasesOk)
        std::printf("chaos phases: FAIL (only %llu fired)\n",
                    static_cast<unsigned long long>(chaos->phasesFired()));
    ok = ok && phasesOk;

    const double wall_s = wallSeconds(t0);
    const long rss_kb = checkRssBudget();
    const double evps =
        wall_s > 0 ? static_cast<double>(eventsExecuted()) / wall_s : 0;
    std::printf("campaign: %.1f s wall, %.2f M events/s, %d windows, "
                "%llu re-sends, %llu domain faults injected\n", wall_s,
                evps / 1e6, windowsRun,
                static_cast<unsigned long long>(resends),
                static_cast<unsigned long long>(injector->domainFaults()));
    if (tsHub)
        std::printf("telemetry: %llu windows, %llu JSONL lines -> %s; "
                    "%llu alerts\n",
                    static_cast<unsigned long long>(tsHub->windowsClosed()),
                    static_cast<unsigned long long>(tsHub->exportedLines()),
                    tsPath.c_str(),
                    static_cast<unsigned long long>(slo->alertsFired()));

    std::string prefix = anti_affinity ? "chaos" : "chaos_ablation";
    prefix += quick ? "_quick." : ".";
    bench::BenchValues out;
    out[prefix + "hosts"] = static_cast<double>(hosts);
    out[prefix + "issued"] = static_cast<double>(issued);
    out[prefix + "delivered"] = static_cast<double>(deliveredCount);
    out[prefix + "duplicates"] = static_cast<double>(duplicates);
    out[prefix + "lost"] = static_cast<double>(lost);
    out[prefix + "conviction_latency_us"] = sim::toMicros(convLatency);
    out[prefix + "conviction_bound_us"] = sim::toMicros(convBound);
    out[prefix + "evacuation_latency_us"] = sim::toMicros(evacLatency);
    out[prefix + "evacuation_bound_us"] = sim::toMicros(evacBound);
    out[prefix + "rack_casualties"] = static_cast<double>(rackCasualties);
    out[prefix + "containment_violated"] = contained ? 0.0 : 1.0;
    out[prefix + "healthy_rtt_p99_us"] = p99;
    out[prefix + "migrations_queued"] =
        static_cast<double>(sm.migrationsQueued());
    out[prefix + "domain_convictions"] =
        static_cast<double>(hm.domainConvictions());
    out[prefix + "per_host_detections"] =
        static_cast<double>(hm.detections());
    out[prefix + "affinity_skips"] =
        static_cast<double>(rm.affinitySkips());
    out[prefix + "conservation_ok"] = c.ok ? 1.0 : 0.0;
    out[prefix + "events_per_s"] = evps;
    out[prefix + "wall_s"] = wall_s;
    if (rss_kb >= 0)
        out[prefix + "rss_peak_mb"] = static_cast<double>(rss_kb) / 1024.0;
    bench::mergeBenchJson("BENCH_chaos.json", out);
    std::printf("wrote BENCH_chaos.json (%sissued/lost/"
                "conviction_latency_us/...)\n", prefix.c_str());

    if (!ok)
        sim::fatal("fig07 chaos: campaign verdicts failed (see above)");
    std::printf("\nchaos campaign: PASS\n");
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool chaosMode = false;
    bool antiAffinity = true;
    std::string fabric = "rack";
    int shards = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            chaosMode = true;
        } else if (std::strcmp(argv[i], "--no-anti-affinity") == 0) {
            antiAffinity = false;
        } else if (std::strcmp(argv[i], "--fabric") == 0 && i + 1 < argc) {
            fabric = argv[++i];
        } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
            shards = std::atoi(argv[++i]);
        } else {
            sim::fatalf("fig07: unknown flag ", argv[i],
                        " (usage: [--quick] [--chaos [--no-anti-affinity]]"
                        " [--fabric rack|l2] [--shards N])");
        }
    }
    if (chaosMode)
        return runChaosCampaign(quick, shards, antiAffinity);
    if (!antiAffinity)
        sim::fatal("fig07: --no-anti-affinity requires --chaos");
    if (fabric == "rack") {
        if (shards > 0)
            sim::fatal("fig07: --shards requires --fabric l2");
        return runRackStudy(quick);
    }
    if (fabric == "l2")
        return runL2Campaign(quick, shards);
    sim::fatalf("fig07: unknown fabric '", fabric, "' (rack|l2)");
    return 1;
}
