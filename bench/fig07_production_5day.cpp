/**
 * @file
 * Reproduces Figure 7: five-day throughput and 99.9th-percentile latency
 * of the ranking service in two (simulated) production datacenters of
 * identical scale — one software-only, one FPGA-accelerated.
 *
 * Live Bing traffic is unavailable, so a synthetic diurnal trace stands
 * in (sinusoidal daily swing + noise + bursts + day-to-day drift). The
 * software datacenter sits behind the paper's dynamic load balancer,
 * which caps admitted traffic when tail latencies exceed thresholds; the
 * FPGA datacenter absorbs more than twice the offered load with tight
 * latencies.
 *
 * Each 30-minute trace window is simulated as a compressed steady-state
 * slice on a representative server (1.5 s warm-up + 4 s measurement).
 */
#include <cstdio>
#include <vector>

#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "sim/event_queue.hpp"

using namespace ccsim;

namespace {

constexpr double kSoftwareNominalQps = 3100.0;
constexpr double kSoftwareDemandQps = 3400.0;  // organic demand at peak
/**
 * The FPGA datacenter organically receives >2x the load the software
 * datacenter is allowed to admit, yet stays below its own ~7200 qps
 * saturation even at the heaviest burst (trace tops out near 1.46x of
 * the nominal daily peak).
 */
constexpr double kFpgaDemandQps = 4500.0;

struct WindowResult {
    double offeredQps;
    double admittedQps;
    double p999Ms;
};

std::vector<WindowResult>
runDatacenter(const std::vector<double> &trace, bool use_fpga,
              bool load_balancer_cap)
{
    sim::EventQueue eq;
    std::unique_ptr<host::LocalFpgaAccelerator> accel;
    if (use_fpga)
        accel = std::make_unique<host::LocalFpgaAccelerator>(eq);
    host::RankingServer server(eq, host::RankingServiceParams{},
                               accel.get(), 11);
    host::PoissonLoadGenerator gen(eq, 100.0,
                                   [&] { server.submitQuery(); }, 13);
    gen.start();

    const double demand_peak =
        use_fpga ? kFpgaDemandQps : kSoftwareDemandQps;
    double admitted_cap = demand_peak;  // dynamic load-balancer state
    std::vector<WindowResult> results;
    for (double load : trace) {
        const double offered = load * demand_peak;
        double admitted = offered;
        if (load_balancer_cap)
            admitted = std::min(admitted, admitted_cap);
        gen.setRate(admitted);
        eq.runFor(sim::fromSeconds(1.5));  // settle at the new rate
        server.clearStats();
        eq.runFor(sim::fromSeconds(4.0));
        const double p999 = server.latencyMs().percentile(99.9);
        results.push_back({offered, admitted, p999});

        if (load_balancer_cap) {
            // The balancer sheds traffic when tails blow up and slowly
            // re-admits when they recover.
            if (p999 > 40.0)
                admitted_cap = std::max(0.85 * admitted, 0.5 * demand_peak);
            else
                admitted_cap = std::min(demand_peak, admitted_cap * 1.05);
        }
    }
    return results;
}

}  // namespace

int
main()
{
    std::printf("=== Figure 7: 5-day production throughput & 99.9%% "
                "latency, two datacenters ===\n\n");

    host::DiurnalTraceParams tp;
    tp.days = 5;
    tp.windowsPerDay = 48;  // 30-minute windows
    const auto trace = host::makeDiurnalTrace(tp);

    auto sw = runDatacenter(trace, false, true);
    auto fpga = runDatacenter(trace, true, false);

    // Normalize: load by the software nominal operating point; latency
    // by the software datacenter's median p99.9 (its healthy tail).
    std::vector<double> sw_tails;
    for (const auto &w : sw)
        sw_tails.push_back(w.p999Ms);
    std::sort(sw_tails.begin(), sw_tails.end());
    const double tail_norm = sw_tails[sw_tails.size() / 2];

    std::printf("normalization: load / %.0f qps, latency / %.2f ms "
                "(software median p99.9)\n\n", kSoftwareNominalQps,
                tail_norm);
    std::printf("  %5s %6s | %9s %9s | %9s %9s\n", "day", "hour",
                "sw load", "sw p99.9", "fpga load", "fpga p99.9");

    double sw_load_sum = 0, fpga_load_sum = 0;
    double sw_tail_peak = 0, fpga_tail_peak = 0;
    double sw_load_peak = 0, fpga_load_peak = 0;
    for (std::size_t w = 0; w < trace.size(); ++w) {
        const double sw_load = sw[w].admittedQps / kSoftwareNominalQps;
        const double fpga_load = fpga[w].admittedQps / kSoftwareNominalQps;
        const double sw_tail = sw[w].p999Ms / tail_norm;
        const double fpga_tail = fpga[w].p999Ms / tail_norm;
        sw_load_sum += sw_load;
        fpga_load_sum += fpga_load;
        sw_tail_peak = std::max(sw_tail_peak, sw_tail);
        fpga_tail_peak = std::max(fpga_tail_peak, fpga_tail);
        sw_load_peak = std::max(sw_load_peak, sw_load);
        fpga_load_peak = std::max(fpga_load_peak, fpga_load);
        if (w % 4 == 0) {  // print every 2 hours
            std::printf("  %5zu %6.1f | %9.2f %9.2f | %9.2f %9.2f\n",
                        w / tp.windowsPerDay,
                        24.0 * (w % tp.windowsPerDay) / tp.windowsPerDay,
                        sw_load, sw_tail, fpga_load, fpga_tail);
        }
    }

    const double n = static_cast<double>(trace.size());
    std::printf("\nsummary (normalized):\n");
    std::printf("  %-34s %10.2f %10.2f\n", "average load (sw / fpga)",
                sw_load_sum / n, fpga_load_sum / n);
    std::printf("  %-34s %10.2f %10.2f\n", "peak load (sw / fpga)",
                sw_load_peak, fpga_load_peak);
    std::printf("  %-34s %10.2f %10.2f\n", "peak p99.9 (sw / fpga)",
                sw_tail_peak, fpga_tail_peak);
    std::printf("\npaper observations reproduced: the software datacenter "
                "shows high-rate latency spikes\nas load varies (balancer "
                "sheds load at peaks); the FPGA-accelerated datacenter "
                "absorbs\n> 2x the load with much lower, tighter-bound "
                "tail latencies.\n");
    return 0;
}
