/**
 * @file
 * Tiny merge-writer for the benchmark-trajectory file `BENCH_kernel.json`.
 *
 * Perf-sensitive binaries (micro_throughput, fig08_load_vs_latency) each
 * record their headline numbers as a flat {"key": number} JSON object in
 * one shared file, so every perf PR has a machine-readable baseline to
 * compare against and CI can archive the trajectory as an artifact.
 *
 * Writers merge: existing keys not produced by the current run are
 * preserved, so running the two binaries in either order yields one
 * combined file. Keys are emitted sorted with fixed formatting, making
 * the file diffable across runs.
 */
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace ccsim::bench {

/** Flat key → value benchmark results. */
using BenchValues = std::map<std::string, double>;

/** Parse a flat {"key": number} object (as written by writeBenchJson). */
inline BenchValues
parseBenchJson(const std::string &text)
{
    BenchValues out;
    std::size_t i = 0;
    const std::size_t n = text.size();
    while (i < n) {
        while (i < n && text[i] != '"')
            ++i;
        if (i >= n)
            break;
        const std::size_t keyStart = ++i;
        while (i < n && text[i] != '"')
            ++i;
        if (i >= n)
            break;
        const std::string key = text.substr(keyStart, i - keyStart);
        ++i;
        while (i < n && (std::isspace(static_cast<unsigned char>(text[i])) ||
                         text[i] == ':'))
            ++i;
        char *end = nullptr;
        const double v = std::strtod(text.c_str() + i, &end);
        if (end == text.c_str() + i)
            continue;  // not a number; skip (we only write flat numbers)
        out[key] = v;
        i = static_cast<std::size_t>(end - text.c_str());
    }
    return out;
}

/**
 * Merge @p values over whatever @p path already holds and rewrite it,
 * keys sorted, one per line.
 */
inline void
mergeBenchJson(const std::string &path, const BenchValues &values)
{
    BenchValues merged;
    {
        std::ifstream in(path);
        if (in) {
            std::stringstream ss;
            ss << in.rdbuf();
            merged = parseBenchJson(ss.str());
        }
    }
    for (const auto &[k, v] : values)
        merged[k] = v;

    std::ofstream out(path);
    out << "{\n";
    bool first = true;
    for (const auto &[k, v] : merged) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        out << (first ? "" : ",\n") << "  \"" << k << "\": " << buf;
        first = false;
    }
    out << "\n}\n";
}

/**
 * Peak resident set size of this process in KiB (VmHWM), or -1 when the
 * platform does not expose it.
 */
inline long
peakRssKb()
{
#ifdef __linux__
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("VmHWM:", 0) == 0)
            return std::strtol(line.c_str() + 6, nullptr, 10);
    }
#endif
    return -1;
}

}  // namespace ccsim::bench
