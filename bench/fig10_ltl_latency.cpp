/**
 * @file
 * Reproduces Figure 10: round-trip latency of LTL accesses to remote
 * FPGAs through the three datacenter network tiers, compared against the
 * Catapult v1 6x8 torus (which is limited to 48 FPGAs).
 *
 * Methodology mirrors the paper: idle-rate ping-pong across multiple
 * sender-receiver pairs per tier; RTT is measured inside LTL, from the
 * moment a data frame's header is generated until its ACK is received.
 * L1/L2 results include background-traffic jitter from the shared
 * switches.
 *
 * The RTT figures are read from the observability registry (the
 * `ltl.node<i>.rtt_us` histograms the engines feed), and setting
 * CCSIM_TRACE=<path> additionally exports a Chrome trace of the runs.
 *
 * Flags:
 *  --quick        shortened run (fewer pings/pairs) for CI smoke;
 *  --attribution  sample every ping through the flight recorder and
 *                 print a per-hop latency-attribution table per tier
 *                 (the components-sum-to-total invariant is checked for
 *                 every exemplar; CCSIM_SPANS=<path> dumps the spans).
 */
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "fpga/shell.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"
#include "torus/torus.hpp"

using namespace ccsim;

namespace {

/** A no-op role so LTL deliveries have a destination. */
struct NullRole : fpga::Role {
    int port = -1;
    std::string name() const override { return "null"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &) override {}
};

/**
 * Measure RTT for a set of (src, dst) host pairs: each src sends
 * `pings` one-frame messages at an idle rate. Per-pair distributions are
 * read from the registry's `ltl.node<src>.rtt_us` histogram and merged
 * into one tier-level histogram.
 */
sim::LogHistogram
measurePairs(core::ConfigurableCloud &cloud, sim::EventQueue &eq,
             obs::Observability &hub,
             const std::vector<std::pair<int, int>> &pairs, int pings)
{
    sim::LogHistogram tier(obs::kDefaultHistMinValue,
                           obs::kDefaultHistBinsPerOctave);
    std::vector<std::unique_ptr<NullRole>> roles;
    for (auto [src, dst] : pairs) {
        roles.push_back(std::make_unique<NullRole>());
        if (cloud.shell(dst).addRole(roles.back().get()) < 0)
            sim::fatal("fig10: no role slot on destination shell");
        auto ch = cloud.openLtl(src, dst, roles.back()->port);
        auto *engine = cloud.shell(src).ltlEngine();
        auto &rtt_hist = hub.registry.histogram(
            "ltl.node" + std::to_string(src) + ".rtt_us");
        rtt_hist.clear();  // pairs may share a source engine
        // Idle rate: 20 us spacing, far below saturation.
        for (int i = 0; i < pings; ++i) {
            eq.scheduleAfter(i * 20 * sim::kMicrosecond,
                             [engine, conn = ch.sendConn()] {
                                 engine->sendMessage(conn, 64);
                             });
        }
        eq.runFor((pings + 50) * 20 * sim::kMicrosecond);
        tier.merge(rtt_hist);
    }
    return tier;
}

void
printRow(const char *tier, std::uint64_t reachable, double avg, double p999,
         double max, const char *paper)
{
    std::printf("  %-14s %9llu %10.2f %10.2f %10.2f   %s\n", tier,
                static_cast<unsigned long long>(reachable), avg, p999, max,
                paper);
}

/**
 * Attribution-mode tier postlude: verify the sum-to-total invariant on
 * every kept exemplar (fatal on violation), print the per-hop breakdown
 * of the worst trace, and feed the exemplars into the Chrome trace.
 *
 * @return The number of exemplars whose invariant was checked.
 */
std::uint64_t
tierAttribution(obs::Observability &hub, const char *tier)
{
    const auto worst = hub.flows.worstFirst();
    for (const obs::FlowTrace *t : worst) {
        const obs::LatencyAttribution a = obs::attributeLatency(*t);
        if (!a.consistent())
            sim::fatalf("fig10: attribution invariant violated for trace ",
                        t->traceId, ": components sum to ", a.sum(),
                        " ps, measured total is ", a.total, " ps");
    }
    if (!worst.empty()) {
        std::printf("\n-- %s: per-hop attribution of the worst of %zu "
                    "exemplars --\n%s", tier, worst.size(),
                    obs::formatAttributionTable(*worst.front()).c_str());
    }
    if (hub.trace.enabled())
        hub.flows.exportChromeTrace(hub.trace);
    return worst.size();
}

}  // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool attribution = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--attribution") == 0)
            attribution = true;
        else
            sim::fatalf("fig10: unknown flag ", argv[i],
                        " (supported: --quick --attribution)");
    }

    std::printf("=== Figure 10: LTL round-trip latency vs reachable "
                "hosts ===\n\n");
    std::printf("Simulated: 24 hosts/rack, idle-rate ping-pong, RTT "
                "measured in LTL\n(data header generated -> ACK "
                "received), multiple pairs per tier.\n\n");

    sim::EventQueue eq;          // must outlive the observability hub
    obs::Observability hub;
    const std::string trace_path = obs::TraceWriter::envPath();
    if (!trace_path.empty()) {
        hub.trace.setEnabled(true);
        // Salvage the buffered events even if a later stage fatals.
        hub.trace.autoFlushOnExit(trace_path);
    }

    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 24;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 2;
    cfg.topology.l2Count = 2;
    cfg.createNics = false;  // pure LTL study
    cfg.shellTemplate.ltl.maxConnections = 64;
    cfg.shellTemplate.roleSlots = 8;
    cfg.obs = &hub;
    if (attribution)
        cfg.withFlowTracing(/*sample_every=*/1, /*tail_capacity=*/32);
    core::ConfigurableCloud cloud(eq, cfg);

    // Periodic probe sampling: feeds time-weighted averages and (when
    // CCSIM_TRACE is set) the counter tracks of the exported trace.
    hub.registry.startSampling(eq, 100 * sim::kMicrosecond, &hub.trace);

    const int kPings = quick ? 60 : 300;
    const int kPairs = quick ? 2 : 6;
    std::uint64_t attributionChecked = 0;

    // L0: pairs under one TOR.
    std::vector<std::pair<int, int>> l0_pairs;
    for (int k = 1; k <= kPairs; ++k)
        l0_pairs.push_back({0, k});
    auto l0 = measurePairs(cloud, eq, hub, l0_pairs, kPings);
    if (attribution) {
        attributionChecked += tierAttribution(hub, "L0 (same TOR)");
        hub.flows.newWindow();
    }

    // L1: pairs across racks within a pod (hosts 0..23 rack0, 24..47
    // rack1 of pod 0).
    std::vector<std::pair<int, int>> l1_pairs;
    for (int k = 0; k < kPairs; ++k)
        l1_pairs.push_back({k, 24 + k});
    auto l1 = measurePairs(cloud, eq, hub, l1_pairs, kPings);
    if (attribution) {
        attributionChecked += tierAttribution(hub, "L1 (pod)");
        hub.flows.newWindow();
    }

    // L2: pairs across pods.
    std::vector<std::pair<int, int>> l2_pairs;
    for (int k = 0; k < kPairs; ++k)
        l2_pairs.push_back({k, 48 + k});
    auto l2 = measurePairs(cloud, eq, hub, l2_pairs, kPings);
    if (attribution)
        attributionChecked += tierAttribution(hub, "L2 (datacenter)");

    hub.registry.stopSampling();

    std::printf("  %-14s %9s %10s %10s %10s   %s\n", "tier",
                "reachable", "avg(us)", "p99.9(us)", "max(us)",
                "paper avg / p99.9");
    printRow("L0 (same TOR)", 24, l0.mean(), l0.percentile(99.9), l0.max(),
             "2.88 / 2.9");
    printRow("L1 (pod)", 960, l1.mean(), l1.percentile(99.9), l1.max(),
             "7.72 / 8.24");
    printRow("L2 (datacenter)", 250000, l2.mean(), l2.percentile(99.9),
             l2.max(), "18.71 / 22.38 (max < 23.5)");

    // --- Catapult v1 6x8 torus comparison -------------------------------
    std::printf("\n  6x8 torus baseline (Catapult v1, max 48 FPGAs):\n");
    std::printf("  %-16s %10s %10s %10s\n", "reachable FPGAs", "avg(us)",
                "min(us)", "max(us)");
    torus::TorusNetwork torus;
    // Order nodes by hop distance from (0,0); the first N reachable
    // nodes give the latency profile at that scale.
    std::vector<std::pair<int, torus::TorusCoord>> by_dist;
    for (int x = 0; x < torus.width(); ++x) {
        for (int y = 0; y < torus.height(); ++y) {
            if (x == 0 && y == 0)
                continue;
            by_dist.push_back({*torus.hopCount({0, 0}, {x, y}),
                               torus::TorusCoord{x, y}});
        }
    }
    std::sort(by_dist.begin(), by_dist.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (int count : {2, 4, 8, 16, 32, 48}) {
        sim::SampleStats rtt;
        for (int i = 0; i < count - 1 &&
                        i < static_cast<int>(by_dist.size());
             ++i) {
            rtt.add(sim::toMicros(
                *torus.roundTripLatency({0, 0}, by_dist[i].second)));
        }
        std::printf("  %-16d %10.2f %10.2f %10.2f\n", count, rtt.mean(),
                    rtt.min(), rtt.max());
    }
    std::printf("\n  paper: torus 1-hop RTT ~1 us, worst case ~7 us; "
                "LTL reaches 100,000+ hosts in < 23.5 us.\n");

    std::printf("\nSamples: L0=%llu L1=%llu L2=%llu\n",
                static_cast<unsigned long long>(l0.count()),
                static_cast<unsigned long long>(l1.count()),
                static_cast<unsigned long long>(l2.count()));

    if (attribution) {
        std::printf("attribution invariant: OK (%llu traces)\n",
                    static_cast<unsigned long long>(attributionChecked));
        const std::string spans_path = obs::FlightRecorder::envPath();
        if (!spans_path.empty()) {
            // Only the last window (L2) is still kept at this point.
            if (hub.flows.writeSpanDumpFile(spans_path))
                std::printf("Span dump written to %s (%zu exemplars)\n",
                            spans_path.c_str(),
                            hub.flows.exemplars().size());
            else
                std::fprintf(stderr,
                             "fig10: failed to write span dump to %s\n",
                             spans_path.c_str());
        }
    }

    if (!trace_path.empty()) {
        if (hub.trace.writeFile(trace_path))
            std::printf("Chrome trace written to %s (%zu events; open in "
                        "ui.perfetto.dev)\n",
                        trace_path.c_str(), hub.trace.eventCount());
        else
            std::fprintf(stderr, "fig10: failed to write trace to %s\n",
                         trace_path.c_str());
    }
    return 0;
}
