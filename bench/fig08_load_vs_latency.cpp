/**
 * @file
 * Reproduces Figure 8: query 99.9% latency versus offered load over the
 * same 5-day period as Figure 7, for the software-only and the
 * FPGA-accelerated datacenters.
 *
 * Paper observations this must reproduce:
 *  - the software datacenter's observable load range is capped (the
 *    dynamic load balancer sheds traffic when tails exceed thresholds);
 *  - the FPGA datacenter absorbs more than twice the offered load;
 *  - the FPGA curve never exceeds the software curve at any load.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <vector>

#include "bench_json.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/event_queue.hpp"
#include "sim/logging.hpp"
#include "sim/random.hpp"
#include "sim/sharded_queue.hpp"

using namespace ccsim;

namespace {

constexpr double kSoftwareNominalQps = 3100.0;

struct WindowPoint {
    double loadNorm;
    double p999Ms;
};

/** Kernel-load accounting for the benchmark trajectory. */
struct KernelLoad {
    std::uint64_t eventsExecuted = 0;
    std::size_t peakLiveEvents = 0;
};

std::vector<WindowPoint>
runDatacenter(const std::vector<double> &trace, bool use_fpga,
              double demand_peak_qps, bool balancer,
              KernelLoad *kernel = nullptr, bool attribution = false)
{
    sim::EventQueue eq;  // must outlive the observability hub
    obs::Observability hub;
    if (attribution) {
        // Flight-recorder sampling: 1-in-16 keeps recording cost small
        // while still catching the tail (worst-N exemplars per run).
        hub.flows.setEnabled(true);
        hub.flows.setSampleEvery(16);
        hub.flows.setTailCapacity(16);
        hub.flows.bindMetrics(hub.registry);
    }
    std::unique_ptr<host::LocalFpgaAccelerator> accel;
    if (use_fpga)
        accel = std::make_unique<host::LocalFpgaAccelerator>(eq);
    host::RankingServer server(eq, host::RankingServiceParams{},
                               accel.get(), 21);
    server.attachObservability(&hub);
    host::PoissonLoadGenerator gen(eq, 100.0,
                                   [&] { server.submitQuery(); }, 23);

    // Optional live telemetry: CCSIM_TS=<path> streams 50 ms windows of
    // every host.rank.* metric as JSONL (both datacenters append to the
    // same file; feed it to tools/ccsim_report for the dashboard).
    const std::string tsPath = obs::TimeSeriesHub::envPath();
    std::unique_ptr<obs::TimeSeriesHub> ts;
    std::unique_ptr<obs::SloEngine> slo;
    std::ofstream tsOut;
    if (!tsPath.empty()) {
        ts = std::make_unique<obs::TimeSeriesHub>(
            obs::TimeSeriesConfig{}.withWindow(50 * sim::kMillisecond));
        ts->watchRegistry(&hub.registry);
        ts->registerSelfProbes(hub.registry);
        tsOut.open(tsPath, std::ios::app);
        if (!tsOut)
            sim::fatalf("fig08: cannot write CCSIM_TS path ", tsPath);
        ts->exportTo(&tsOut);
        ts->startSampling(eq);
        slo = std::make_unique<obs::SloEngine>(*ts);
        obs::SloObjective lat;
        lat.name = use_fpga ? "fpga_rank_p999" : "sw_rank_p999";
        slo->addObjective(
            lat.on("host.rank.latency_ms")
                .where(obs::SloStat::kP999, obs::SloCmp::kLt, 12.0)
                .withBudget(0.05)
                .withWindows(60, 5)
                .withBurnThreshold(4.0));
        slo->attachObservability(hub.registry);
    }
    gen.start();

    // The figure is read from the registry, not the server's raw stats.
    const sim::LogHistogram *latency =
        hub.registry.findHistogram("host.rank.latency_ms");

    double admitted_cap = demand_peak_qps;
    std::vector<WindowPoint> points;
    for (double load : trace) {
        double admitted = load * demand_peak_qps;
        if (balancer)
            admitted = std::min(admitted, admitted_cap);
        gen.setRate(admitted);
        eq.runFor(sim::fromSeconds(1.5));
        server.clearStats();
        eq.runFor(sim::fromSeconds(4.0));
        const double p999 = latency->percentile(99.9);
        points.push_back({admitted / kSoftwareNominalQps, p999});
        if (balancer) {
            if (p999 > 40.0)
                admitted_cap =
                    std::max(0.85 * admitted, 0.5 * demand_peak_qps);
            else
                admitted_cap =
                    std::min(demand_peak_qps, admitted_cap * 1.05);
        }
    }
    if (ts) {
        ts->stopSampling();
        std::printf("  telemetry: %llu windows, %llu JSONL lines, %llu "
                    "SLO alerts -> %s\n",
                    static_cast<unsigned long long>(ts->windowsClosed()),
                    static_cast<unsigned long long>(ts->exportedLines()),
                    static_cast<unsigned long long>(slo->alertsFired()),
                    tsPath.c_str());
    }
    if (kernel != nullptr) {
        kernel->eventsExecuted += eq.eventsExecuted();
        kernel->peakLiveEvents =
            std::max(kernel->peakLiveEvents, eq.peakLiveEvents());
    }
    if (attribution) {
        const auto worst = hub.flows.worstFirst();
        for (const obs::FlowTrace *t : worst) {
            const obs::LatencyAttribution a = obs::attributeLatency(*t);
            if (!a.consistent())
                sim::fatalf("fig08: attribution invariant violated for "
                            "trace ", t->traceId, ": components sum to ",
                            a.sum(), " ps, measured total is ", a.total,
                            " ps");
        }
        std::printf("\n-- %s datacenter: per-hop attribution of the "
                    "worst of %zu exemplars (%llu flows sampled) --\n",
                    use_fpga ? "FPGA" : "software", worst.size(),
                    static_cast<unsigned long long>(
                        hub.flows.flowsSampled()));
        if (!worst.empty())
            std::printf("%s",
                        obs::formatAttributionTable(*worst.front())
                            .c_str());
        std::printf("attribution invariant: OK (%zu traces)\n\n",
                    worst.size());
    }
    return points;
}

/** One pod of the sharded benchmark: a full ranking-datacenter replica. */
struct BenchPod {
    std::unique_ptr<obs::Observability> hub;
    std::unique_ptr<host::LocalFpgaAccelerator> accel;
    std::unique_ptr<host::RankingServer> server;
    std::unique_ptr<host::PoissonLoadGenerator> gen;
    const sim::LogHistogram *latency = nullptr;
    double admittedCap = 0;
    double admitted = 0;
};

/**
 * The parallel-kernel benchmark: @p pods independent replicas of the
 * Figure 8 datacenter, one per partition (logical process), executed by
 * @p threads workers. Each pod draws its service and arrival randomness
 * from Rng::forStream(master, pod) — the same per-pod sequences at
 * every thread count — and runs its own load-balancer control loop, so
 * the workload is embarrassingly parallel by construction and measures
 * pure kernel scaling (events/s/core).
 */
KernelLoad
runShardedDatacenter(const std::vector<double> &trace, bool use_fpga,
                     double demand_peak_qps, bool balancer, int pods,
                     int threads)
{
    sim::ShardedEventQueue::Config qc;
    qc.partitions = pods;
    qc.threads = threads;
    sim::ShardedEventQueue sq(qc);

    std::vector<BenchPod> fleet(static_cast<std::size_t>(pods));
    for (int p = 0; p < pods; ++p) {
        BenchPod &pod = fleet[static_cast<std::size_t>(p)];
        sim::EventQueue &eq = sq.partition(p);
        pod.hub = std::make_unique<obs::Observability>();
        if (use_fpga)
            pod.accel = std::make_unique<host::LocalFpgaAccelerator>(eq);
        pod.server = std::make_unique<host::RankingServer>(
            eq, host::RankingServiceParams{}, pod.accel.get(),
            sim::Rng::forStream(21, static_cast<std::uint64_t>(p)).next());
        pod.server->attachObservability(pod.hub.get());
        pod.gen = std::make_unique<host::PoissonLoadGenerator>(
            eq, 100.0, [srv = pod.server.get()] { srv->submitQuery(); },
            sim::Rng::forStream(23, static_cast<std::uint64_t>(p)).next());
        pod.gen->start();
        pod.latency =
            pod.hub->registry.findHistogram("host.rank.latency_ms");
        pod.admittedCap = demand_peak_qps;
    }

    for (double load : trace) {
        for (auto &pod : fleet) {
            pod.admitted = load * demand_peak_qps;
            if (balancer)
                pod.admitted = std::min(pod.admitted, pod.admittedCap);
            pod.gen->setRate(pod.admitted);
        }
        sq.runFor(sim::fromSeconds(1.5));
        for (auto &pod : fleet)
            pod.server->clearStats();
        sq.runFor(sim::fromSeconds(4.0));
        if (balancer) {
            for (auto &pod : fleet) {
                const double p999 = pod.latency->percentile(99.9);
                if (p999 > 40.0)
                    pod.admittedCap = std::max(0.85 * pod.admitted,
                                               0.5 * demand_peak_qps);
                else
                    pod.admittedCap = std::min(demand_peak_qps,
                                               pod.admittedCap * 1.05);
            }
        }
    }

    KernelLoad k;
    k.eventsExecuted = sq.eventsExecuted();
    for (int p = 0; p < pods; ++p)
        k.peakLiveEvents = std::max(k.peakLiveEvents,
                                    sq.partition(p).peakLiveEvents());
    return k;
}

void
printBinned(const char *label, const std::vector<WindowPoint> &points,
            double tail_norm)
{
    std::map<int, sim::SampleStats> bins;  // load rounded to 0.1
    for (const auto &p : points)
        bins[static_cast<int>(p.loadNorm * 10.0 + 0.5)].add(p.p999Ms);
    std::printf("-- %s --\n", label);
    std::printf("  %10s %12s %12s %8s\n", "load", "avg p99.9", "max p99.9",
                "windows");
    for (const auto &[bin, stats] : bins) {
        std::printf("  %10.1f %12.2f %12.2f %8zu\n", bin / 10.0,
                    stats.mean() / tail_norm, stats.max() / tail_norm,
                    stats.count());
    }
    std::printf("\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    // --quick: shortened run for CI smoke + trajectory recording.
    // --attribution: flight-recorder sampling + per-hop breakdown tables.
    // --shards N: parallel-kernel mode — 8 pod replicas on the sharded
    //             kernel with N worker threads; records the
    //             events/s/core scaling series instead of the figure.
    // --smoke: minimal sharded run for sanitizer CI (no BENCH output).
    bool quick = false;
    bool attribution = false;
    bool smoke = false;
    int shards = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--attribution") == 0)
            attribution = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = quick = true;
        else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
            shards = std::atoi(argv[++i]);
    }

    host::DiurnalTraceParams tp;
    tp.days = quick ? 1 : 5;
    tp.windowsPerDay = smoke ? 3 : (quick ? 12 : 48);
    const auto trace = host::makeDiurnalTrace(tp);

    if (shards > 0) {
        if (attribution)
            sim::fatal("fig08: --attribution is not supported with "
                       "--shards (per-pod recorders are not merged here)");
        constexpr int kPods = 8;
        std::printf("=== Figure 8 kernel scaling: %d pod replicas, "
                    "--shards %d ===\n\n", kPods, shards);
        const auto wall0 = std::chrono::steady_clock::now();
        const KernelLoad k = runShardedDatacenter(trace, true, 4500.0,
                                                  false, kPods, shards);
        const double wallSecs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        const int cores = std::min(shards, kPods);
        const double perSec =
            static_cast<double>(k.eventsExecuted) / wallSecs;
        std::printf("wall clock %.2f s for %llu events: %.2fM events/s "
                    "(%.2fM events/s/core on %d worker%s)\n", wallSecs,
                    static_cast<unsigned long long>(k.eventsExecuted),
                    perSec / 1e6, perSec / cores / 1e6, cores,
                    cores == 1 ? "" : "s");
        if (!smoke) {
            const std::string prefix =
                (quick ? std::string("fig08_quick.") : std::string("fig08."))
                + "shards" + std::to_string(shards) + ".";
            ccsim::bench::BenchValues v;
            v[prefix + "wall_seconds"] = wallSecs;
            v[prefix + "events_executed"] =
                static_cast<double>(k.eventsExecuted);
            v[prefix + "events_per_sec_wall"] = perSec;
            v[prefix + "events_per_sec_core"] = perSec / cores;
            v[prefix + "workers"] = static_cast<double>(cores);
            v[prefix + "peak_live_events"] =
                static_cast<double>(k.peakLiveEvents);
            ccsim::bench::mergeBenchJson("BENCH_kernel.json", v);
            std::printf("-> BENCH_kernel.json (%s*)\n", prefix.c_str());
        }
        return 0;
    }

    std::printf("=== Figure 8: 99.9%% latency vs offered load over %d "
                "day%s ===\n\n", quick ? 1 : 5, quick ? "" : "s");

    KernelLoad kernel;
    const auto wall0 = std::chrono::steady_clock::now();
    const auto sw =
        runDatacenter(trace, false, 3400.0, true, &kernel, attribution);
    const auto fpga =
        runDatacenter(trace, true, 4500.0, false, &kernel, attribution);
    const double wallSecs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - wall0)
                                .count();

    std::vector<double> sw_tails;
    for (const auto &p : sw)
        sw_tails.push_back(p.p999Ms);
    std::sort(sw_tails.begin(), sw_tails.end());
    const double tail_norm = sw_tails[sw_tails.size() / 2];
    std::printf("latency normalized to the software datacenter's median "
                "p99.9 (%.2f ms); load to %.0f qps\n\n", tail_norm,
                kSoftwareNominalQps);

    printBinned("software datacenter", sw, tail_norm);
    printBinned("FPGA datacenter", fpga, tail_norm);

    double sw_max_load = 0, fpga_max_load = 0;
    for (const auto &p : sw)
        sw_max_load = std::max(sw_max_load, p.loadNorm);
    for (const auto &p : fpga)
        fpga_max_load = std::max(fpga_max_load, p.loadNorm);
    std::printf("observed load range: software up to %.2f (balancer-"
                "capped), FPGA up to %.2f (%.1fx)\n", sw_max_load,
                fpga_max_load, fpga_max_load / sw_max_load);

    // "...executing queries at a latency that never exceeds the software
    // datacenter at any load": compare per overlapping load bin.
    std::map<int, double> sw_bin, fpga_bin;
    for (const auto &p : sw) {
        const int b = static_cast<int>(p.loadNorm * 10.0 + 0.5);
        sw_bin[b] = std::max(sw_bin[b], p.p999Ms);
    }
    for (const auto &p : fpga) {
        const int b = static_cast<int>(p.loadNorm * 10.0 + 0.5);
        fpga_bin[b] = std::max(fpga_bin[b], p.p999Ms);
    }
    bool never_exceeds = true;
    for (const auto &[bin, fpga_max] : fpga_bin) {
        auto it = sw_bin.find(bin);
        if (it != sw_bin.end() && fpga_max > it->second)
            never_exceeds = false;
    }
    std::printf("FPGA latency never exceeds software at any overlapping "
                "load: %s (paper: true)\n", never_exceeds ? "yes" : "NO");

    // Benchmark trajectory: record how fast the DES kernel chewed
    // through this figure's event load (wall-clock, so this is the
    // end-to-end number the kernel rework is meant to move). Attribution
    // runs pay for span recording, so they must not pollute the file.
    if (attribution)
        return 0;
    const std::string prefix = quick ? "fig08_quick." : "fig08.";
    ccsim::bench::BenchValues v;
    v[prefix + "wall_seconds"] = wallSecs;
    v[prefix + "events_executed"] =
        static_cast<double>(kernel.eventsExecuted);
    v[prefix + "events_per_sec_wall"] =
        static_cast<double>(kernel.eventsExecuted) / wallSecs;
    v[prefix + "peak_live_events"] =
        static_cast<double>(kernel.peakLiveEvents);
    const long rss = ccsim::bench::peakRssKb();
    if (rss >= 0)
        v[prefix + "rss_peak_kb"] = static_cast<double>(rss);
    ccsim::bench::mergeBenchJson("BENCH_kernel.json", v);
    std::printf("\nwall clock %.2f s for %llu events (%.2fM events/sec) "
                "-> BENCH_kernel.json\n", wallSecs,
                static_cast<unsigned long long>(kernel.eventsExecuted),
                kernel.eventsExecuted / wallSecs / 1e6);
    return 0;
}
