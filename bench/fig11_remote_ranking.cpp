/**
 * @file
 * Reproduces Figure 11: latency vs throughput of ranking running in
 * software, with the locally attached FPGA, and with a *remote* FPGA
 * accessed over LTL (Section V-D).
 *
 * The remote curve exercises the full simulated stack per query: host ->
 * PCIe DMA -> Elastic Router -> forwarder role -> LTL engine -> bump ->
 * TOR -> remote bump -> remote LTL -> remote ER -> ranking role, and the
 * same path back. The paper's claim: over a range of throughput targets,
 * the latency overhead of remote access is minimal (the remote curve
 * nearly overlays the local one), because LTL RTTs are microseconds
 * against millisecond-scale queries.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "host/load_generator.hpp"
#include "host/ranking_server.hpp"
#include "roles/ranking/ranking_role.hpp"
#include "sim/event_queue.hpp"

using namespace ccsim;

namespace {

constexpr double kSoftwareNominalQps = 3100.0;

enum class Mode { kSoftware, kLocalFpga, kRemoteFpga };

struct Point {
    double qps;
    double p999_ms;
    double completed_qps;
};

Point
runPoint(Mode mode, double qps, double seconds)
{
    sim::EventQueue eq;

    std::unique_ptr<core::ConfigurableCloud> cloud;
    std::unique_ptr<host::LocalFpgaAccelerator> local;
    std::unique_ptr<roles::RankingRole> role;
    std::unique_ptr<roles::ForwarderRole> forwarder;
    std::unique_ptr<roles::RemoteRankingClient> remote_client;
    core::LtlChannel req_ch, rep_ch;  // must stay open while serving
    host::FeatureAccelerator *accel = nullptr;

    if (mode == Mode::kLocalFpga) {
        local = std::make_unique<host::LocalFpgaAccelerator>(eq);
        accel = local.get();
    } else if (mode == Mode::kRemoteFpga) {
        core::CloudConfig cfg;
        cfg.topology.hostsPerRack = 4;
        cfg.topology.racksPerPod = 2;
        cfg.topology.l1PerPod = 2;
        cfg.topology.pods = 1;
        cfg.topology.l2Count = 1;
        cfg.shellTemplate.ltl.maxConnections = 16;
        cloud = std::make_unique<core::ConfigurableCloud>(eq, cfg);

        const int client = 0;
        const int remote = 4;  // cross-rack remote accelerator

        roles::RankingRoleParams rp;
        rp.occupancyPerDoc = 300 * sim::kNanosecond;  // match local engine
        rp.fixedLatency = 40 * sim::kMicrosecond;
        role = std::make_unique<roles::RankingRole>(eq, rp);
        if (cloud->shell(remote).addRole(role.get()) < 0)
            sim::fatal("fig11: ranking role does not fit");
        forwarder = std::make_unique<roles::ForwarderRole>();
        if (cloud->shell(client).addRole(forwarder.get()) < 0)
            sim::fatal("fig11: forwarder does not fit");
        req_ch = cloud->openLtl(client, remote, fpga::kErPortRole0);
        rep_ch = cloud->openLtl(remote, client, forwarder->port());
        remote_client = std::make_unique<roles::RemoteRankingClient>(
            eq, cloud->shell(client), *forwarder, req_ch.sendConn(),
            rep_ch.sendConn());
        accel = remote_client.get();
    }

    host::RankingServer server(eq, host::RankingServiceParams{}, accel, 31);
    host::PoissonLoadGenerator gen(eq, qps, [&] { server.submitQuery(); },
                                   37);
    gen.start();
    eq.runFor(sim::fromSeconds(1.5));
    server.clearStats();
    const auto before = server.completed();
    eq.runFor(sim::fromSeconds(seconds));
    gen.stop();

    Point p;
    p.qps = qps;
    p.p999_ms = server.latencyMs().percentile(99.9);
    p.completed_qps =
        static_cast<double>(server.completed() - before) / seconds;
    return p;
}

}  // namespace

int
main()
{
    std::printf("=== Figure 11: software vs local-FPGA vs remote-FPGA "
                "ranking ===\n\n");

    const std::vector<double> sw_rates = {500, 1200, 2000, 2600, 3000,
                                          3100};
    const std::vector<double> fpga_rates = {500,  1500, 2500, 3500,
                                            4500, 5500, 6200, 6800};

    // Normalization: software 99.9th-percentile latency target.
    const Point norm = runPoint(Mode::kSoftware, kSoftwareNominalQps, 20.0);
    const double target_ms = norm.p999_ms;
    std::printf("normalization: software p99.9 target = %.2f ms at %.0f "
                "qps\n\n", target_ms, kSoftwareNominalQps);

    auto print_curve = [&](const char *label, Mode mode,
                           const std::vector<double> &rates,
                           double seconds) {
        std::printf("-- %s --\n", label);
        std::printf("  %12s %12s %14s %14s\n", "offered qps", "p99.9(ms)",
                    "norm tput", "norm p99.9");
        double at_target = 0;
        for (double r : rates) {
            const Point p = runPoint(mode, r, seconds);
            std::printf("  %12.0f %12.2f %14.2f %14.2f\n", p.qps,
                        p.p999_ms, p.completed_qps / kSoftwareNominalQps,
                        p.p999_ms / target_ms);
            if (p.p999_ms <= target_ms)
                at_target = std::max(at_target, p.completed_qps);
        }
        std::printf("  throughput at target: %.2f (normalized)\n\n",
                    at_target / kSoftwareNominalQps);
        return at_target;
    };

    print_curve("software", Mode::kSoftware, sw_rates, 12.0);
    const double local_at = print_curve("local FPGA", Mode::kLocalFpga,
                                        fpga_rates, 12.0);
    const std::vector<double> remote_rates = {500,  2500, 4500,
                                              5500, 6200, 6800};
    const double remote_at = print_curve("remote FPGA (over LTL)",
                                         Mode::kRemoteFpga, remote_rates,
                                         4.0);

    std::printf("remote/local throughput at target: %.3f (paper: remote "
                "overhead is minimal, curves nearly overlay)\n",
                remote_at / local_at);
    return 0;
}
