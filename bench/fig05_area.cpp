/**
 * @file
 * Reproduces Figure 5: area and frequency breakdown of the
 * production-deployed shell image with remote acceleration support.
 *
 * The area model is the same one the Shell uses for admission control of
 * roles, so this bench also validates that the composed production image
 * reproduces the paper's totals (131,350 / 172,600 ALMs, 76%; shell 44%).
 */
#include <cstdio>

#include "fpga/area_model.hpp"

using namespace ccsim;

int
main()
{
    std::printf("=== Figure 5: area and frequency of the production "
                "shell image ===\n\n");
    const fpga::AreaModel m = fpga::AreaModel::productionImage();

    std::printf("  %-34s %10s %7s %8s\n", "component", "ALMs", "%", "MHz");
    for (const auto &c : m.components()) {
        char freq[16];
        if (c.freqMhz > 0)
            std::snprintf(freq, sizeof(freq), "%.0f", c.freqMhz);
        else
            std::snprintf(freq, sizeof(freq), "-");
        std::printf("  %-34s %10u %6.0f%% %8s\n", c.name.c_str(), c.alms,
                    m.percentOf(c.alms), freq);
    }
    std::printf("  %-34s %10u %6.0f%%\n", "Total Area Used", m.totalUsed(),
                m.utilizationPercent());
    std::printf("  %-34s %10u\n\n", "Total Area Available",
                m.totalAvailable());

    std::printf("  shell fraction: %.1f%% (paper: 44%%)\n",
                100.0 * m.shellUsed() / m.totalAvailable());
    std::printf("  role fraction:  %.1f%% (paper: 32%%)\n",
                100.0 * m.roleUsed() / m.totalAvailable());
    std::printf("  paper totals:   131,350 / 172,600 ALMs (76%%)\n");
    return 0;
}
