/**
 * @file
 * Reproduces Figure 12: average, 95th and 99th percentile request
 * latency to a remote DNN accelerator pool as the ratio of software
 * clients to FPGAs (oversubscription) grows, normalized per-category to
 * locally-attached performance (Section V-E).
 *
 * Setup mirrors the paper: a small pool of latency-sensitive DNN
 * accelerators deployed through HaaS, shared by synthetic clients that
 * each drive several times the expected production per-client rate
 * (7.5x here), so each FPGA saturates at 3.0 clients — equivalently,
 * it could sustain 22.5 clients at production rates.
 */
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cloud.hpp"
#include "haas/haas.hpp"
#include "host/load_generator.hpp"
#include "roles/dnn_role.hpp"
#include "roles/ranking/ranking_role.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

using namespace ccsim;

namespace {

/** Synthetic per-client request rate: 7.5x the production rate. */
constexpr double kClientQps = 750.0;
/** Fixed client count; oversubscription grows by removing pool FPGAs. */
constexpr int kNumClients = 12;

struct Percentiles {
    double avg, p95, p99;
};

/** One software client driving the pool round-robin over LTL. */
class DnnClient
{
  public:
    DnnClient(sim::EventQueue &eq, core::ConfigurableCloud &cloud,
              int host, int id, sim::SampleStats &lat_us)
        : queue(eq), shell(cloud.shell(host)), clientId(id),
          latencies(lat_us)
    {
        forwarder = std::make_unique<roles::ForwarderRole>();
        if (shell.addRole(forwarder.get()) < 0)
            sim::fatal("fig12: forwarder does not fit");
        shell.setHostRxHandler(
            [this](int port, const router::ErMessagePtr &msg) {
                onHostRx(port, msg);
            });
    }

    void addTarget(core::ConfigurableCloud &cloud, int pool_host)
    {
        Target t;
        t.req = cloud.openLtl(shellHost(cloud), pool_host,
                              fpga::kErPortRole0);
        t.rep = cloud.openLtl(pool_host, shellHost(cloud),
                              forwarder->port());
        targets.push_back(std::move(t));
    }

    void sendRequest()
    {
        // Per-request random pool member (the paper's shared work queue
        // spreads requests without per-client affinity).
        const Target &t = targets[rng.uniformInt(
            static_cast<std::uint64_t>(targets.size()))];
        auto req = std::make_shared<roles::DnnRequest>();
        req->requestId = nextId++;
        req->clientId = clientId;
        req->replyConn = t.rep.sendConn();
        outstanding[req->requestId] = queue.now();
        auto fwd = std::make_shared<roles::ForwarderRole::ForwardRequest>();
        fwd->sendConn = t.req.sendConn();
        fwd->bytes = 512;
        fwd->inner = std::move(req);
        shell.sendFromHost(forwarder->port(), 512, std::move(fwd));
    }

    void clearInFlight() { outstanding.clear(); }

  private:
    struct Target {
        core::LtlChannel req, rep;
    };

    sim::EventQueue &queue;
    fpga::Shell &shell;
    int clientId;
    sim::SampleStats &latencies;
    std::unique_ptr<roles::ForwarderRole> forwarder;
    std::vector<Target> targets;
    std::unordered_map<std::uint64_t, sim::TimePs> outstanding;
    std::uint64_t nextId = 1;
    sim::Rng rng{static_cast<std::uint64_t>(clientId) * 7919 + 3};

    int shellHost(core::ConfigurableCloud &cloud)
    {
        for (int i = 0; i < cloud.numServers(); ++i) {
            if (&cloud.shell(i) == &shell)
                return i;
        }
        sim::fatal("fig12: shell not found");
    }

    void onHostRx(int port, const router::ErMessagePtr &msg)
    {
        if (port != forwarder->port())
            return;
        auto delivery =
            std::static_pointer_cast<fpga::LtlDelivery>(msg->payload);
        if (!delivery || !delivery->appPayload)
            return;
        auto resp = std::static_pointer_cast<roles::DnnResponse>(
            delivery->appPayload);
        auto it = outstanding.find(resp->requestId);
        if (it == outstanding.end())
            return;
        latencies.add(sim::toMicros(queue.now() - it->second));
        outstanding.erase(it);
    }
};

Percentiles
measureRemote(int pool_size, double seconds)
{
    sim::EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 24;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    cfg.shellTemplate.ltl.maxConnections = 64;
    core::ConfigurableCloud cloud(eq, cfg);

    // Deploy the DNN pool through HaaS; the RM hands out the lowest
    // free hosts (0..pool_size-1); clients use the hosts after them.
    std::vector<std::unique_ptr<roles::DnnRole>> pool_roles;
    haas::ServiceManager sm(
        eq, cloud.resourceManager(), "dnn", [&](int) -> fpga::Role * {
            pool_roles.push_back(std::make_unique<roles::DnnRole>(eq));
            return pool_roles.back().get();
        });
    if (!sm.deploy(pool_size))
        sim::fatal("fig12: DNN pool deploy failed");

    sim::SampleStats latencies;
    std::vector<std::unique_ptr<DnnClient>> clients;
    std::vector<std::unique_ptr<host::PoissonLoadGenerator>> gens;
    for (int c = 0; c < kNumClients; ++c) {
        const int host = pool_size + c;  // hosts after the pool
        clients.push_back(std::make_unique<DnnClient>(eq, cloud, host, c,
                                                      latencies));
        for (int instance : sm.instances())
            clients.back()->addTarget(cloud, instance);
        gens.push_back(std::make_unique<host::PoissonLoadGenerator>(
            eq, kClientQps,
            [client = clients.back().get()] { client->sendRequest(); },
            1000 + c));
    }
    for (auto &g : gens)
        g->start();
    eq.runFor(sim::fromSeconds(1.0));  // warm-up
    latencies.clear();
    eq.runFor(sim::fromSeconds(seconds));
    for (auto &g : gens)
        g->stop();

    return Percentiles{latencies.mean(), latencies.percentile(95.0),
                       latencies.percentile(99.0)};
}

Percentiles
measureLocal(double seconds)
{
    // Locally-attached baseline: one client, its own FPGA, PCIe only.
    sim::EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 2;
    cfg.topology.racksPerPod = 1;
    cfg.topology.l1PerPod = 1;
    cfg.topology.pods = 1;
    cfg.topology.l2Count = 1;
    core::ConfigurableCloud cloud(eq, cfg);

    roles::DnnRole dnn(eq);
    if (cloud.shell(0).addRole(&dnn) < 0)
        sim::fatal("fig12: DNN role does not fit");

    sim::SampleStats latencies;
    std::unordered_map<std::uint64_t, sim::TimePs> outstanding;
    cloud.shell(0).setHostRxHandler(
        [&](int, const router::ErMessagePtr &msg) {
            auto resp =
                std::static_pointer_cast<roles::DnnResponse>(msg->payload);
            auto it = outstanding.find(resp->requestId);
            if (it == outstanding.end())
                return;
            latencies.add(sim::toMicros(eq.now() - it->second));
            outstanding.erase(it);
        });

    std::uint64_t next_id = 1;
    host::PoissonLoadGenerator gen(
        eq, kClientQps,
        [&] {
            auto req = std::make_shared<roles::DnnRequest>();
            req->requestId = next_id++;
            req->replyViaPcie = true;
            outstanding[req->requestId] = eq.now();
            cloud.shell(0).sendFromHost(fpga::kErPortRole0, 512,
                                        std::move(req));
        },
        999);
    gen.start();
    eq.runFor(sim::fromSeconds(1.0));
    latencies.clear();
    eq.runFor(sim::fromSeconds(seconds));
    gen.stop();
    return Percentiles{latencies.mean(), latencies.percentile(95.0),
                       latencies.percentile(99.0)};
}

}  // namespace

int
main()
{
    std::printf("=== Figure 12: remote DNN pool latency vs "
                "oversubscription ===\n\n");
    std::printf("%d clients drive %.0f req/s each (7.5x production "
                "rate); oversubscription grows by\nremoving FPGAs from "
                "the HaaS pool. DNN service time 444 us => saturation "
                "at 3.0\nclients/FPGA (equivalently 22.5 clients at "
                "production rates).\n\n", kNumClients, kClientQps);

    const Percentiles local = measureLocal(20.0);
    std::printf("locally-attached baseline: avg %.0f us, p95 %.0f us, "
                "p99 %.0f us\n\n", local.avg, local.p95, local.p99);

    std::printf("  %8s %6s | %8s %8s %8s | %8s %8s %8s\n", "ratio",
                "pool", "avg(us)", "p95(us)", "p99(us)", "avg/loc",
                "p95/loc", "p99/loc");
    for (int pool : {24, 12, 8, 6, 5, 4}) {
        const double ratio = static_cast<double>(kNumClients) / pool;
        const Percentiles r = measureRemote(pool, 6.0);
        std::printf("  %8.2f %6d | %8.0f %8.0f %8.0f | %8.2f %8.2f "
                    "%8.2f\n",
                    ratio, pool, r.avg, r.p95, r.p99, r.avg / local.avg,
                    r.p95 / local.p95, r.p99 / local.p99);
    }

    std::printf("\npaper reference at 1:1 — remote adds +1%% avg, +4.7%% "
                "p95, +32%% p99; latencies spike as the\npool approaches "
                "saturation; host CPU/memory impact of serving remote "
                "requests is nil\n(the FPGA handles network and compute "
                "directly).\n");
    return 0;
}
