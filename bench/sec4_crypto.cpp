/**
 * @file
 * Reproduces the Section IV network-encryption analysis:
 *
 *  - CPU cores required for 40 Gb/s full-duplex crypto (AES-GCM-128 at
 *    Intel's published 1.26 cycles/byte => ~5 cores; AES-CBC-128-SHA1 =>
 *    >= 15 cores);
 *  - FPGA per-packet latency (CBC-SHA1 1500 B: 11 us first flit to first
 *    flit, because CBC's serial dependency forces a 33-packet
 *    interleave; GCM pipelines perfectly);
 *  - software per-packet latency (~4 us for 1500 B CBC-SHA1);
 *  - measured throughput of this repository's real AES/SHA software
 *    implementation (the functional datapath used by the crypto role).
 */
#include <chrono>
#include <cstdio>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/crypto_timing.hpp"
#include "crypto/sha1.hpp"
#include "sim/time.hpp"

using namespace ccsim;

namespace {

double
measureSoftwareGcmMBps(std::size_t total_bytes)
{
    crypto::Key128 key{};
    for (int i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(i);
    crypto::AesGcm gcm(key);
    std::vector<std::uint8_t> buf(1500, 0x5A);
    std::uint8_t iv[12] = {};
    crypto::Block tag;
    const auto start = std::chrono::steady_clock::now();
    std::size_t done = 0;
    while (done < total_bytes) {
        gcm.encrypt(iv, nullptr, 0, buf.data(), buf.size(), tag);
        done += buf.size();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    return static_cast<double>(done) / 1e6 / secs;
}

double
measureSoftwareCbcSha1MBps(std::size_t total_bytes)
{
    crypto::Key128 key{};
    key[3] = 9;
    crypto::Block iv{};
    crypto::AesCbc cbc(key, iv);
    std::vector<std::uint8_t> buf(1504, 0x5A);
    const auto start = std::chrono::steady_clock::now();
    std::size_t done = 0;
    while (done < total_bytes) {
        cbc.encrypt(buf.data(), buf.size());
        (void)crypto::hmacSha1(key.data(), key.size(), buf.data(),
                               buf.size());
        done += buf.size();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    return static_cast<double>(done) / 1e6 / secs;
}

}  // namespace

int
main()
{
    std::printf("=== Section IV: network crypto offload ===\n\n");

    crypto::CpuCryptoModel cpu;
    crypto::FpgaCryptoModel fpga;

    std::printf("-- CPU cores needed for 40 Gb/s full duplex (2.4 GHz "
                "Haswell model) --\n");
    std::printf("  %-22s %12s %16s\n", "suite", "cycles/B", "cores needed");
    std::printf("  %-22s %12.2f %16.2f   (paper: ~5)\n", "AES-GCM-128",
                cpu.gcmCyclesPerByte,
                cpu.coresForLineRate(crypto::Suite::kAesGcm128, 40.0));
    std::printf("  %-22s %12.2f %16.2f   (paper: >= 15)\n",
                "AES-CBC-128-SHA1", cpu.cbcSha1CyclesPerByte,
                cpu.coresForLineRate(crypto::Suite::kAesCbc128Sha1, 40.0));

    std::printf("\n-- Per-packet latency, 1500 B (first flit to first "
                "flit) --\n");
    std::printf("  %-22s %14s %14s\n", "suite", "FPGA (us)", "software (us)");
    std::printf("  %-22s %14.2f %14.2f   (paper: 11 us vs ~4 us)\n",
                "AES-CBC-128-SHA1",
                sim::toMicros(fpga.packetLatency(
                    crypto::Suite::kAesCbc128Sha1, 1500)),
                sim::toMicros(cpu.packetLatency(
                    crypto::Suite::kAesCbc128Sha1, 1500)));
    std::printf("  %-22s %14.2f %14.2f   (GCM pipelines perfectly)\n",
                "AES-GCM-128",
                sim::toMicros(
                    fpga.packetLatency(crypto::Suite::kAesGcm128, 1500)),
                sim::toMicros(
                    cpu.packetLatency(crypto::Suite::kAesGcm128, 1500)));

    std::printf("\n-- Packet-size sweep: FPGA CBC-SHA1 latency (33-packet "
                "interleave) --\n");
    std::printf("  %-12s %12s\n", "bytes", "latency(us)");
    for (std::uint32_t bytes : {64u, 256u, 512u, 1024u, 1500u}) {
        std::printf("  %-12u %12.2f\n", bytes,
                    sim::toMicros(fpga.packetLatency(
                        crypto::Suite::kAesCbc128Sha1, bytes)));
    }

    std::printf("\n-- FPGA sustained throughput --\n");
    std::printf("  both suites sustain line rate: %.1f Gb/s of 40 Gb/s\n",
                fpga.throughputGbps(crypto::Suite::kAesGcm128, 40.0));

    std::printf("\n-- This repo's functional (portable, table-based) "
                "software crypto --\n");
    const double gcm_mbps = measureSoftwareGcmMBps(8u << 20);
    const double cbc_mbps = measureSoftwareCbcSha1MBps(8u << 20);
    std::printf("  AES-GCM-128 encrypt:      %8.1f MB/s\n", gcm_mbps);
    std::printf("  AES-CBC-128 + HMAC-SHA1:  %8.1f MB/s\n", cbc_mbps);
    std::printf("  (reference only — the paper's CPU numbers assume "
                "AES-NI/CLMUL hardware.)\n");

    std::printf("\n  CPU cost recovered by offload at 40 Gb/s: %.1f "
                "cores (GCM) to %.1f cores (CBC-SHA1)\n",
                cpu.coresForLineRate(crypto::Suite::kAesGcm128, 40.0),
                cpu.coresForLineRate(crypto::Suite::kAesCbc128Sha1, 40.0));
    return 0;
}
