/**
 * @file
 * Reproduces the paper's Section I framing claim: LTL "makes the
 * datacenter-scale remote FPGA resources appear closer than either a
 * single local SSD access or the time to get through the host's
 * networking stack."
 *
 * LTL RTTs are measured on the simulated fabric (same methodology as
 * Figure 10); the comparators are standard latency figures for 2016-era
 * datacenter hardware: kernel UDP stack traversal ~25 us per direction
 * pair (syscall, socket, driver, interrupt+wakeup on the return), and
 * a datacenter-grade NVMe/SATA SSD random read ~90 us.
 */
#include <cstdio>
#include <memory>

#include "core/cloud.hpp"
#include "sim/stats.hpp"

using namespace ccsim;

namespace {

struct NullRole : fpga::Role {
    int port = -1;
    std::string name() const override { return "null"; }
    std::uint32_t areaAlms() const override { return 100; }
    void attach(fpga::Shell &, int p) override { port = p; }
    void onMessage(const router::ErMessagePtr &) override {}
};

double
measureRttUs(core::ConfigurableCloud &cloud, sim::EventQueue &eq, int src,
             int dst, NullRole &role)
{
    auto ch = cloud.openLtl(src, dst, role.port);
    auto *engine = cloud.shell(src).ltlEngine();
    const std::size_t before = engine->rttUs().count();
    for (int i = 0; i < 100; ++i) {
        eq.scheduleAfter(i * 20 * sim::kMicrosecond,
                         [engine, conn = ch.sendConn()] {
                             engine->sendMessage(conn, 64);
                         });
    }
    eq.runFor(sim::fromMillis(4));
    double sum = 0;
    const auto &samples = engine->rttUs().raw();
    for (std::size_t i = before; i < samples.size(); ++i)
        sum += samples[i];
    return sum / static_cast<double>(samples.size() - before);
}

}  // namespace

int
main()
{
    std::printf("=== Section I/V: how close are remote FPGAs? ===\n\n");

    sim::EventQueue eq;
    core::CloudConfig cfg;
    cfg.topology.hostsPerRack = 24;
    cfg.topology.racksPerPod = 2;
    cfg.topology.l1PerPod = 2;
    cfg.topology.pods = 2;
    cfg.topology.l2Count = 2;
    cfg.createNics = false;
    cfg.shellTemplate.roleSlots = 4;
    cfg.shellTemplate.ltl.maxConnections = 32;
    core::ConfigurableCloud cloud(eq, cfg);

    NullRole r0, r1, r2;
    cloud.shell(1).addRole(&r0);
    cloud.shell(24).addRole(&r1);
    cloud.shell(48).addRole(&r2);

    const double l0 = measureRttUs(cloud, eq, 0, 1, r0);
    const double l1 = measureRttUs(cloud, eq, 0, 24, r1);
    const double l2 = measureRttUs(cloud, eq, 0, 48, r2);

    // Comparators (2016-era production hardware, see file comment).
    const double host_stack_rtt_us = 2.0 * 25.0;  // request + response
    const double ssd_read_us = 90.0;

    std::printf("  %-44s %10s\n", "operation", "latency");
    std::printf("  %-44s %8.2f us\n",
                "LTL round trip, same TOR (24 hosts)", l0);
    std::printf("  %-44s %8.2f us\n",
                "LTL round trip, same pod (960 hosts)", l1);
    std::printf("  %-44s %8.2f us\n",
                "LTL round trip, cross pod (250k+ hosts)", l2);
    std::printf("  %-44s %8.2f us\n",
                "host networking stack round trip (kernel UDP)",
                host_stack_rtt_us);
    std::printf("  %-44s %8.2f us\n", "single local SSD random read",
                ssd_read_us);

    std::printf("\npaper claim reproduced: %s — every remote FPGA in the "
                "datacenter is reachable faster\nthan one local SSD "
                "access, and faster than host software could even enter "
                "the network.\n",
                (l2 < host_stack_rtt_us && l2 < ssd_read_us) ? "yes"
                                                             : "NO");
    return 0;
}
