/**
 * @file
 * Renders a CCSIM_TS telemetry stream (the TimeSeriesHub's JSONL
 * export) as a self-contained HTML fleet dashboard, or follows it live
 * as text. No dependencies: the parser below understands exactly the
 * JSON the simulator emits, and every chart is inline SVG.
 *
 *     ccsim_report ts.jsonl -o dashboard.html
 *     ccsim_report ts.jsonl --heatmap 'sim.shard.partition*.events'
 *     ccsim_report ts.jsonl --follow        # live text tail
 *
 * Flags:
 *   -o FILE          output HTML path (default ccsim_dashboard.html)
 *   --title S        dashboard title
 *   --heatmap GLOB   render matching series as a per-instance heatmap
 *                    (rows = series, columns = windows) instead of line
 *                    charts — e.g. per-pod event rates
 *   --max-charts N   cap on individual line charts (default 48; the
 *                    dropped count is reported, never silent)
 *   --follow         text mode: print windows/alerts as they append
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

// ---------------------------------------------------------------------
// Minimal JSON value + parser (objects, arrays, strings, numbers,
// true/false/null — all the exporter emits)
// ---------------------------------------------------------------------

struct Json {
    enum class Type { kNull, kBool, kNum, kStr, kArr, kObj };
    Type type = Type::kNull;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;

    const Json *find(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
    double numOr(const std::string &key, double dflt) const
    {
        const Json *v = find(key);
        return v != nullptr && v->type == Type::kNum ? v->num : dflt;
    }
    std::string strOr(const std::string &key, const std::string &dflt) const
    {
        const Json *v = find(key);
        return v != nullptr && v->type == Type::kStr ? v->str : dflt;
    }
};

struct JsonParser {
    const char *p;
    const char *end;
    bool ok = true;

    explicit JsonParser(const std::string &s)
        : p(s.data()), end(s.data() + s.size())
    {
    }

    void ws()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }
    bool lit(const char *s, std::size_t n)
    {
        if (static_cast<std::size_t>(end - p) < n ||
            std::strncmp(p, s, n) != 0) {
            ok = false;
            return false;
        }
        p += n;
        return true;
    }

    Json value()
    {
        ws();
        Json v;
        if (p >= end) {
            ok = false;
            return v;
        }
        switch (*p) {
        case '{': {
            v.type = Json::Type::kObj;
            ++p;
            ws();
            if (p < end && *p == '}') {
                ++p;
                return v;
            }
            while (ok) {
                ws();
                Json key = value();
                if (!ok || key.type != Json::Type::kStr)
                    break;
                ws();
                if (p >= end || *p != ':') {
                    ok = false;
                    break;
                }
                ++p;
                v.obj.emplace_back(std::move(key.str), value());
                ws();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return v;
                }
                ok = false;
            }
            return v;
        }
        case '[': {
            v.type = Json::Type::kArr;
            ++p;
            ws();
            if (p < end && *p == ']') {
                ++p;
                return v;
            }
            while (ok) {
                v.arr.push_back(value());
                ws();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return v;
                }
                ok = false;
            }
            return v;
        }
        case '"': {
            v.type = Json::Type::kStr;
            ++p;
            while (p < end && *p != '"') {
                if (*p == '\\' && p + 1 < end) {
                    ++p;
                    switch (*p) {
                    case 'n': v.str += '\n'; break;
                    case 't': v.str += '\t'; break;
                    case 'r': v.str += '\r'; break;
                    case 'u':
                        // Exporter escapes are ASCII-only; keep it simple.
                        if (end - p >= 5) {
                            v.str += '?';
                            p += 4;
                        }
                        break;
                    default: v.str += *p; break;
                    }
                } else {
                    v.str += *p;
                }
                ++p;
            }
            if (p >= end)
                ok = false;
            else
                ++p;
            return v;
        }
        case 't':
            v.type = Json::Type::kBool;
            v.b = true;
            lit("true", 4);
            return v;
        case 'f':
            v.type = Json::Type::kBool;
            lit("false", 5);
            return v;
        case 'n':
            lit("null", 4);
            return v;
        default: {
            v.type = Json::Type::kNum;
            char *after = nullptr;
            v.num = std::strtod(p, &after);
            if (after == p)
                ok = false;
            p = after;
            return v;
        }
        }
    }
};

// ---------------------------------------------------------------------
// Stream model
// ---------------------------------------------------------------------

/** The timeline of one series (fields depend on the kind). */
struct SeriesData {
    std::string kind;           // counter | gauge | probe | histogram
    std::vector<double> t_us;
    std::vector<double> a;      // gauge: value; counter/probe: rate;
                                // histogram: p50
    std::vector<double> b;      // histogram: p99
};

struct AlertEvent {
    double t_us = 0.0;
    std::string slo;
    std::string series;
    bool firing = false;
    double burnLong = 0.0;
    double burnShort = 0.0;
    int host = -1;
};

/** A chaos-campaign phase marker (injected fault / detected conviction). */
struct ChaosMarker {
    double t_us = 0.0;
    std::string phase;
    std::string kind;  // "injected" | "detected"
};

struct Dashboard {
    double windowUs = 0.0;
    std::map<std::string, SeriesData> series;
    std::vector<AlertEvent> alerts;
    std::vector<ChaosMarker> chaos;
    std::size_t windows = 0;
    std::size_t badLines = 0;

    void ingest(const Json &rec);
};

void
Dashboard::ingest(const Json &rec)
{
    const std::string type = rec.strOr("type", "");
    if (type == "meta") {
        windowUs = rec.numOr("window_us", 0.0);
    } else if (type == "series") {
        series[rec.strOr("name", "?")].kind = rec.strOr("kind", "gauge");
    } else if (type == "window") {
        ++windows;
        const double t = rec.numOr("t_us", 0.0);
        const Json *s = rec.find("series");
        if (s == nullptr)
            return;
        for (const auto &[name, pt] : s->obj) {
            SeriesData &sd = series[name];
            sd.t_us.push_back(t);
            if (sd.kind == "histogram") {
                sd.a.push_back(pt.numOr("p50", 0.0));
                sd.b.push_back(pt.numOr("p99", 0.0));
            } else if (sd.kind == "gauge") {
                sd.a.push_back(pt.numOr("v", 0.0));
            } else {
                sd.a.push_back(pt.numOr("r", 0.0));
            }
        }
    } else if (type == "alert") {
        AlertEvent a;
        a.t_us = rec.numOr("t_us", 0.0);
        a.slo = rec.strOr("slo", "?");
        a.series = rec.strOr("series", "?");
        a.firing = rec.strOr("state", "") == "firing";
        a.burnLong = rec.numOr("burn_long", 0.0);
        a.burnShort = rec.numOr("burn_short", 0.0);
        a.host = static_cast<int>(rec.numOr("host", -1.0));
        alerts.push_back(std::move(a));
    } else if (type == "chaos") {
        ChaosMarker m;
        m.t_us = rec.numOr("t_us", 0.0);
        m.phase = rec.strOr("phase", "?");
        m.kind = rec.strOr("kind", "injected");
        chaos.push_back(std::move(m));
    }
}

/** Same glob semantics as the simulator (`*` matches >= 1 chars). */
bool
globMatch(const std::string &pattern, const std::string &path)
{
    std::size_t p = 0, s = 0;
    std::size_t starP = std::string::npos, starS = 0;
    while (s < path.size()) {
        if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starS = s + 1;
            ++s;
        } else if (p < pattern.size() && pattern[p] == path[s]) {
            ++p;
            ++s;
        } else if (starP != std::string::npos) {
            p = starP + 1;
            s = ++starS;
        } else {
            return false;
        }
    }
    return p == pattern.size();
}

// ---------------------------------------------------------------------
// HTML / SVG rendering
// ---------------------------------------------------------------------

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        case '"': out += "&quot;"; break;
        default: out += c; break;
        }
    }
    return out;
}

std::string
fmtNum(double v)
{
    char buf[32];
    if (v == 0.0)
        return "0";
    const double av = std::fabs(v);
    if (av >= 1e6 || av < 1e-3)
        std::snprintf(buf, sizeof buf, "%.3g", v);
    else if (av >= 100.0)
        std::snprintf(buf, sizeof buf, "%.0f", v);
    else
        std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
}

/** One polyline path scaled into the chart box. */
void
svgPolyline(std::ostream &os, const std::vector<double> &t,
            const std::vector<double> &v, double t0, double t1, double lo,
            double hi, int w, int h, const char *color, double width)
{
    os << "<polyline fill='none' stroke='" << color << "' stroke-width='"
       << width << "' points='";
    const double tspan = t1 > t0 ? t1 - t0 : 1.0;
    const double vspan = hi > lo ? hi - lo : 1.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const double x = (t[i] - t0) / tspan * (w - 8) + 4;
        const double y = h - 4 - (v[i] - lo) / vspan * (h - 8);
        os << fmtNum(x) << "," << fmtNum(y) << " ";
    }
    os << "'/>\n";
}

void
chartCard(std::ostream &os, const std::string &name, const SeriesData &sd)
{
    constexpr int kW = 320, kH = 96;
    double lo = 0.0, hi = 0.0;
    for (double v : sd.a)
        hi = std::max(hi, v);
    for (double v : sd.b)
        hi = std::max(hi, v);
    const double t0 = sd.t_us.front(), t1 = sd.t_us.back();

    const char *unit = sd.kind == "histogram" ? "p50 / p99"
                       : sd.kind == "gauge"   ? "value"
                                              : "rate /s";
    os << "<div class='card'><div class='cardtitle'>"
       << htmlEscape(name) << " <span class='kind'>" << sd.kind << " &middot; "
       << unit << "</span></div>\n";
    os << "<svg viewBox='0 0 " << kW << " " << kH << "' width='" << kW
       << "' height='" << kH << "'>";
    os << "<rect x='0' y='0' width='" << kW << "' height='" << kH
       << "' fill='#11151c'/>";
    svgPolyline(os, sd.t_us, sd.a, t0, t1, lo, hi, kW, kH, "#4fc1ff", 1.2);
    if (sd.kind == "histogram")
        svgPolyline(os, sd.t_us, sd.b, t0, t1, lo, hi, kW, kH, "#ff7a4f",
                    1.4);
    os << "</svg><div class='axis'><span>" << fmtNum(t0 / 1000.0)
       << " ms</span><span>max " << fmtNum(hi) << "</span><span>"
       << fmtNum(t1 / 1000.0) << " ms</span></div></div>\n";
}

void
heatmap(std::ostream &os, const Dashboard &db, const std::string &glob)
{
    std::vector<std::pair<std::string, const SeriesData *>> rows;
    for (const auto &[name, sd] : db.series) {
        if (!sd.t_us.empty() && globMatch(glob, name))
            rows.emplace_back(name, &sd);
    }
    if (rows.empty()) {
        os << "<p class='note'>heatmap: no series match <code>"
           << htmlEscape(glob) << "</code></p>\n";
        return;
    }
    // Columns = the union timeline of the first row (all rows share the
    // hub cadence); cap to the last 240 windows.
    const std::size_t cols = std::min<std::size_t>(
        240, rows.front().second->t_us.size());
    double hi = 0.0;
    for (const auto &[name, sd] : rows)
        for (double v : sd->a)
            hi = std::max(hi, v);
    const int cw = 4, ch = 10;
    os << "<h2>Heatmap: <code>" << htmlEscape(glob)
       << "</code> <span class='kind'>" << rows.size()
       << " series &middot; last " << cols
       << " windows &middot; max " << fmtNum(hi) << "</span></h2>\n<svg "
          "viewBox='0 0 "
       << (cols * cw + 220) << " " << (rows.size() * (ch + 1) + 4)
       << "'>";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const SeriesData &sd = *rows[r].second;
        const std::size_t n = sd.a.size();
        const std::size_t from = n > cols ? n - cols : 0;
        for (std::size_t i = from; i < n; ++i) {
            const double x = hi > 0.0 ? sd.a[i] / hi : 0.0;
            const int shade = static_cast<int>(20 + 215 * x);
            os << "<rect x='" << ((i - from) * cw) << "' y='"
               << (r * (ch + 1)) << "' width='" << cw << "' height='" << ch
               << "' fill='rgb(" << shade << "," << (shade / 3) << ","
               << (90 - shade / 3) << ")'/>";
        }
        os << "<text x='" << (cols * cw + 6) << "' y='"
           << (r * (ch + 1) + ch - 2) << "' class='hmlabel'>"
           << htmlEscape(rows[r].first) << "</text>";
    }
    os << "</svg>\n";
}

void
alertRow(std::ostream &os, const AlertEvent &a)
{
    os << "<tr class='" << (a.firing ? "firing" : "resolved") << "'><td>"
       << fmtNum(a.t_us / 1000.0) << "</td><td>"
       << (a.firing ? "FIRING" : "resolved") << "</td><td>"
       << htmlEscape(a.slo) << "</td><td>" << htmlEscape(a.series)
       << "</td><td>" << fmtNum(a.burnLong) << " / "
       << fmtNum(a.burnShort) << "</td><td>"
       << (a.host >= 0 ? std::to_string(a.host) : std::string("-"))
       << "</td></tr>\n";
}

void
chaosRow(std::ostream &os, const ChaosMarker &m)
{
    os << "<tr class='chaos'><td>" << fmtNum(m.t_us / 1000.0)
       << "</td><td>" << (m.kind == "detected" ? "DETECTED" : "INJECTED")
       << "</td><td>chaos</td><td>" << htmlEscape(m.phase)
       << "</td><td>-</td><td>-</td></tr>\n";
}

/**
 * One merged timeline: SLO alert transitions interleaved with chaos
 * phase markers, so a campaign dashboard shows each injected fault next
 * to the alerts and domain convictions it provoked.
 */
void
alertTimeline(std::ostream &os, const Dashboard &db)
{
    os << "<h2>Alerts &amp; chaos phases <span class='kind'>"
       << db.alerts.size() << " alert transitions &middot; "
       << db.chaos.size() << " chaos markers</span></h2>\n";
    if (db.alerts.empty() && db.chaos.empty()) {
        os << "<p class='note'>no alerts fired, no chaos injected</p>\n";
        return;
    }
    os << "<table><tr><th>t (ms)</th><th>state</th><th>SLO</th>"
          "<th>series</th><th>burn long/short</th><th>host</th></tr>\n";
    // Both streams are already in emission (time) order; merge by time,
    // chaos markers first on ties so the injection reads before its
    // consequences.
    std::size_t ai = 0, ci = 0;
    while (ai < db.alerts.size() || ci < db.chaos.size()) {
        const bool chaosNext =
            ci < db.chaos.size() &&
            (ai >= db.alerts.size() ||
             db.chaos[ci].t_us <= db.alerts[ai].t_us);
        if (chaosNext)
            chaosRow(os, db.chaos[ci++]);
        else
            alertRow(os, db.alerts[ai++]);
    }
    os << "</table>\n";
}

int
writeHtml(const Dashboard &db, const std::string &path,
          const std::string &title, const std::string &heatmapGlob,
          std::size_t maxCharts)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "ccsim_report: cannot write %s\n",
                     path.c_str());
        return 1;
    }
    os << "<!doctype html><html><head><meta charset='utf-8'><title>"
       << htmlEscape(title) << "</title><style>\n"
       << "body{background:#0b0e13;color:#dce3ea;font:14px/1.45 "
          "system-ui,sans-serif;margin:24px}\n"
          "h1{font-size:20px}h2{font-size:16px;margin-top:28px}\n"
          ".kind{color:#8b98a5;font-weight:normal;font-size:12px}\n"
          ".grid{display:flex;flex-wrap:wrap;gap:12px}\n"
          ".card{background:#151a22;border:1px solid #232b36;"
          "border-radius:6px;padding:8px}\n"
          ".cardtitle{font-size:12px;margin-bottom:4px;max-width:320px;"
          "overflow:hidden;text-overflow:ellipsis;white-space:nowrap}\n"
          ".axis{display:flex;justify-content:space-between;"
          "color:#8b98a5;font-size:11px}\n"
          "table{border-collapse:collapse;font-size:12px}\n"
          "td,th{border:1px solid #232b36;padding:3px 8px;"
          "text-align:left}\n"
          "tr.firing td{color:#ff7a4f}tr.resolved td{color:#7ccf7c}\n"
          "tr.chaos td{color:#c792ea}\n"
          ".hmlabel{fill:#8b98a5;font-size:9px}\n"
          ".note{color:#8b98a5}code{color:#4fc1ff}\n"
       << "</style></head><body>\n<h1>" << htmlEscape(title)
       << " <span class='kind'>window " << fmtNum(db.windowUs)
       << " us &middot; " << db.windows << " windows &middot; "
       << db.series.size() << " series</span></h1>\n";

    alertTimeline(os, db);
    if (!heatmapGlob.empty())
        heatmap(os, db, heatmapGlob);

    os << "<h2>Series</h2>\n<div class='grid'>\n";
    std::size_t charted = 0, skipped = 0;
    for (const auto &[name, sd] : db.series) {
        if (sd.t_us.size() < 2) {
            ++skipped;
            continue;
        }
        if (charted >= maxCharts) {
            ++skipped;
            continue;
        }
        chartCard(os, name, sd);
        ++charted;
    }
    os << "</div>\n";
    if (skipped > 0)
        os << "<p class='note'>" << skipped
           << " series not charted (short history or over --max-charts "
           << maxCharts << ")</p>\n";
    os << "</body></html>\n";
    std::printf("ccsim_report: wrote %s (%zu charts, %zu alerts, %zu "
                "chaos markers, %zu windows)\n",
                path.c_str(), charted, db.alerts.size(), db.chaos.size(),
                db.windows);
    return 0;
}

// ---------------------------------------------------------------------
// --follow text mode
// ---------------------------------------------------------------------

void
printTextRecord(const Json &rec)
{
    const std::string type = rec.strOr("type", "");
    if (type == "window") {
        const Json *s = rec.find("series");
        std::printf("[%10.1f us] window seq=%.0f  %zu series\n",
                    rec.numOr("t_us", 0.0), rec.numOr("seq", 0.0),
                    s != nullptr ? s->obj.size() : 0);
    } else if (type == "alert") {
        std::printf("[%10.1f us] %s slo=%s series=%s burn=%.2f/%.2f "
                    "host=%d\n",
                    rec.numOr("t_us", 0.0),
                    rec.strOr("state", "?") == "firing" ? "ALERT  "
                                                        : "resolve",
                    rec.strOr("slo", "?").c_str(),
                    rec.strOr("series", "?").c_str(),
                    rec.numOr("burn_long", 0.0),
                    rec.numOr("burn_short", 0.0),
                    static_cast<int>(rec.numOr("host", -1.0)));
    } else if (type == "chaos") {
        std::printf("[%10.1f us] CHAOS %s phase=%s\n",
                    rec.numOr("t_us", 0.0),
                    rec.strOr("kind", "?").c_str(),
                    rec.strOr("phase", "?").c_str());
    } else if (type == "series") {
        std::printf("               new series %s (%s)\n",
                    rec.strOr("name", "?").c_str(),
                    rec.strOr("kind", "?").c_str());
    } else if (type == "meta") {
        std::printf("               stream opened, window %.1f us\n",
                    rec.numOr("window_us", 0.0));
    }
    std::fflush(stdout);
}

int
follow(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "ccsim_report: cannot open %s\n",
                     path.c_str());
        return 1;
    }
    std::string line;
    while (true) {
        if (std::getline(in, line)) {
            if (line.empty())
                continue;
            JsonParser jp(line);
            const Json rec = jp.value();
            if (jp.ok)
                printTextRecord(rec);
            continue;
        }
        // EOF: the producer may still be writing; poll for growth.
        in.clear();
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string input, output = "ccsim_dashboard.html";
    std::string title = "ccsim fleet telemetry";
    std::string heatmapGlob;
    std::size_t maxCharts = 48;
    bool doFollow = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--title" && i + 1 < argc) {
            title = argv[++i];
        } else if (arg == "--heatmap" && i + 1 < argc) {
            heatmapGlob = argv[++i];
        } else if (arg == "--max-charts" && i + 1 < argc) {
            maxCharts = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (arg == "--follow") {
            doFollow = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "usage: ccsim_report <ts.jsonl> [-o out.html] "
                         "[--title S] [--heatmap GLOB] [--max-charts N] "
                         "[--follow]\n");
            return 2;
        } else {
            input = arg;
        }
    }
    if (input.empty()) {
        std::fprintf(stderr, "ccsim_report: no input file\n");
        return 2;
    }
    if (doFollow)
        return follow(input);

    std::ifstream in(input);
    if (!in) {
        std::fprintf(stderr, "ccsim_report: cannot open %s\n",
                     input.c_str());
        return 1;
    }
    Dashboard db;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JsonParser jp(line);
        const Json rec = jp.value();
        if (jp.ok)
            db.ingest(rec);
        else
            ++db.badLines;
    }
    if (db.badLines > 0)
        std::fprintf(stderr, "ccsim_report: skipped %zu malformed lines\n",
                     db.badLines);
    return writeHtml(db, output, title, heatmapGlob, maxCharts);
}
