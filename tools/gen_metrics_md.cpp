/**
 * @file
 * Generates docs/METRICS.md from the canonical pattern table in
 * src/obs/metric_names.hpp. Run from the repo root:
 *
 *     ./build/tools/gen_metrics_md > docs/METRICS.md
 *
 * The committed document is checked against this table by the
 * MetricNames.* tests, so regenerate it whenever the table changes.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metric_names.hpp"

namespace {

/** The subsystem prefix of a pattern: everything before the first dot. */
std::string
prefixOf(const char *pattern)
{
    const char *dot = std::strchr(pattern, '.');
    return dot ? std::string(pattern, dot) : std::string(pattern);
}

const char *
sectionTitle(const std::string &prefix)
{
    if (prefix == "sim")
        return "DES kernel (`sim.queue.*`)";
    if (prefix == "trace")
        return "Flow tracing (`trace.*`)";
    if (prefix == "ltl")
        return "LTL transport (`ltl.node<i>.*`)";
    if (prefix == "switch")
        return "Fabric switches (`switch.<name>.*`)";
    if (prefix == "router")
        return "Elastic Router (`router.node<i>.*`)";
    if (prefix == "fpga")
        return "FPGA shell (`fpga.node<i>.*`)";
    if (prefix == "nic")
        return "NICs (`nic.node<i>.*`)";
    if (prefix == "host")
        return "Ranking servers (`host.<node>.*`)";
    if (prefix == "haas")
        return "Hardware-as-a-Service (`haas.*`)";
    if (prefix == "serving")
        return "Cluster serving layer (`serving.<service>.*`)";
    if (prefix == "ts")
        return "Windowed time-series hub (`ts.*`)";
    if (prefix == "slo")
        return "SLO / burn-rate engine (`slo.<objective>.*`)";
    if (prefix == "fault")
        return "Fault injection (`fault.*`)";
    if (prefix == "chaos")
        return "Chaos campaigns (`chaos.*`)";
    return "Other";
}

}  // namespace

int
main()
{
    std::printf("# Metrics reference\n\n");
    std::printf("Every metric path the simulator registers, by subsystem. "
                "`*` in a\npattern stands for an instance name "
                "(`node3`, `tor.0.1`, a service\nname, ...). Generated "
                "from `src/obs/metric_names.hpp` by\n"
                "`tools/gen_metrics_md`; do not edit by hand.\n\n");
    std::printf("Kinds: **counter** (monotonic event count), **gauge** "
                "(live value read\nby probe at snapshot/sampling time), "
                "**histogram** (log-binned sample\ndistribution).\n");

    std::string current;
    for (const auto &mp : ccsim::obs::kMetricPatterns) {
        const std::string prefix = prefixOf(mp.pattern);
        if (prefix != current) {
            current = prefix;
            std::printf("\n## %s\n\n", sectionTitle(prefix));
            std::printf("| Metric | Kind | Description |\n");
            std::printf("|---|---|---|\n");
        }
        std::printf("| `%s` | %s | %s |\n", mp.pattern, mp.kind, mp.help);
    }
    return 0;
}
